//! Property-based tests for the CPU-side substrate.

use proptest::prelude::*;

use capsim_cpu::{CounterFile, FreqMeter, GsharePredictor, PStateTable, SimClock, TState};

proptest! {
    /// The clock is monotone and cycle→time conversion is exact.
    #[test]
    fn clock_monotonicity(steps in proptest::collection::vec((1.0f64..1e7, 1200.0f64..2700.0), 1..100)) {
        let mut c = SimClock::new();
        let mut prev = 0.0;
        let mut expected = 0.0;
        for &(cycles, mhz) in &steps {
            c.advance_cycles(cycles, mhz);
            expected += cycles * 1e3 / mhz;
            prop_assert!(c.now_ns() > prev);
            prev = c.now_ns();
        }
        prop_assert!((c.now_ns() - expected).abs() / expected < 1e-12);
    }

    /// The frequency meter's reading is always within the range of the
    /// frequencies it saw.
    #[test]
    fn freq_meter_bounded_by_inputs(bursts in proptest::collection::vec((1e3f64..1e7, 1200.0f64..2700.0), 1..50)) {
        let mut m = FreqMeter::new();
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for &(cycles, mhz) in &bursts {
            m.record(cycles, cycles * 1e3 / mhz);
            lo = lo.min(mhz);
            hi = hi.max(mhz);
        }
        let avg = m.avg_mhz();
        prop_assert!(avg >= lo - 1e-6 && avg <= hi + 1e-6, "{lo} <= {avg} <= {hi}");
    }

    /// T-state stepping: deeper/shallower are inverses inside the range,
    /// and duty × stretch == 1 exactly.
    #[test]
    fn tstate_algebra(on in 1u8..=16) {
        let t = TState::of_16(on);
        prop_assert!((t.duty() * t.stretch() - 1.0).abs() < 1e-12);
        if on > 1 && on < 16 {
            prop_assert_eq!(t.deeper().shallower(), t);
            prop_assert_eq!(t.shallower().deeper(), t);
        }
    }

    /// P-state table lookups are total and ordered.
    #[test]
    fn pstate_lookup_total(idx in any::<u8>()) {
        let t = PStateTable::e5_2680();
        let s = t.get(idx);
        prop_assert!(s.freq_mhz >= t.slowest().freq_mhz);
        prop_assert!(s.freq_mhz <= t.fastest().freq_mhz);
        prop_assert!(s.volts > 0.5 && s.volts < 1.2);
    }

    /// The predictor never reports more mispredictions than branches and
    /// handles any PC/outcome stream without panicking.
    #[test]
    fn predictor_counts_consistent(stream in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..500)) {
        let mut p = GsharePredictor::new(12);
        for &(pc, taken) in &stream {
            p.execute(pc, taken);
        }
        let (b, m) = p.stats();
        prop_assert_eq!(b, stream.len() as u64);
        prop_assert!(m <= b);
        prop_assert!((0.0..=1.0).contains(&p.miss_rate()));
    }

    /// Counter windows: since() of a later snapshot is non-negative in
    /// every field and adds back up.
    #[test]
    fn counter_windows_add_up(a in 0u64..1000, b in 0u64..1000) {
        let first = CounterFile { instructions_committed: a, ..Default::default() };
        let second = CounterFile { instructions_committed: a + b, ..Default::default() };
        let w = second.since(&first);
        prop_assert_eq!(w.instructions_committed, b);
    }
}
