//! The raw per-core performance-counter file and the frequency meter.
//!
//! `capsim-counters` exposes these through a PAPI-style API; the fields
//! mirror the events the paper collected with PAPI on the Romley platform.
//! Memory-side events live in `capsim_mem::MemStats`; this file holds the
//! core-side ones.

/// Core-side counters. Plain data; snapshot and subtract for windows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterFile {
    /// Instructions retired (architecturally committed). Identical across
    /// power caps for a given program — the paper checks this.
    pub instructions_committed: u64,
    /// Instructions executed, including squashed wrong-path work. Differs
    /// across caps by a fraction of a percent.
    pub instructions_executed: u64,
    /// Committed loads and stores.
    pub loads: u64,
    pub stores: u64,
    /// Wrong-path (speculative, squashed) loads.
    pub spec_loads: u64,
    /// Branches and mispredictions.
    pub branches: u64,
    pub branch_mispredicts: u64,
    /// Unhalted core cycles (APERF-like; does not advance while a T-state
    /// halt window or C-state has the clock stopped).
    pub unhalted_cycles: u64,
}

impl CounterFile {
    /// Window = `self` − `earlier`.
    pub fn since(&self, earlier: &CounterFile) -> CounterFile {
        CounterFile {
            instructions_committed: self.instructions_committed - earlier.instructions_committed,
            instructions_executed: self.instructions_executed - earlier.instructions_executed,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            spec_loads: self.spec_loads - earlier.spec_loads,
            branches: self.branches - earlier.branches,
            branch_mispredicts: self.branch_mispredicts - earlier.branch_mispredicts,
            unhalted_cycles: self.unhalted_cycles - earlier.unhalted_cycles,
        }
    }

    /// Instructions per unhalted cycle.
    pub fn ipc(&self) -> f64 {
        if self.unhalted_cycles == 0 {
            0.0
        } else {
            self.instructions_committed as f64 / self.unhalted_cycles as f64
        }
    }
}

/// APERF/MPERF-style average-frequency meter.
///
/// Real tools compute "average frequency" as unhalted cycles divided by
/// unhalted time. Under T-state modulation the core is halted between
/// bursts, so this reading stays at the current P-state frequency even as
/// wall-clock execution time balloons — the signature in the paper's
/// Table II rows A7–A9/B7–B9 (frequency pinned at 1200).
#[derive(Clone, Copy, Debug, Default)]
pub struct FreqMeter {
    unhalted_cycles: f64,
    unhalted_ns: f64,
}

impl FreqMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a burst of `cycles` executed at full clock over `ns` of
    /// *unhalted* time.
    pub fn record(&mut self, cycles: f64, ns: f64) {
        debug_assert!(cycles >= 0.0 && ns >= 0.0);
        self.unhalted_cycles += cycles;
        self.unhalted_ns += ns;
    }

    /// Average frequency in MHz over everything recorded; 0 if nothing.
    pub fn avg_mhz(&self) -> f64 {
        if self.unhalted_ns == 0.0 {
            0.0
        } else {
            self.unhalted_cycles / self.unhalted_ns * 1e3
        }
    }

    /// Raw totals: (unhalted cycles, unhalted nanoseconds). Differencing
    /// two snapshots gives a windowed frequency reading, the way tools
    /// difference APERF/MPERF.
    pub fn totals(&self) -> (f64, f64) {
        (self.unhalted_cycles, self.unhalted_ns)
    }

    /// Merge another meter's window (used when averaging seeded runs).
    pub fn merge(&mut self, other: &FreqMeter) {
        self.unhalted_cycles += other.unhalted_cycles;
        self.unhalted_ns += other.unhalted_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_subtraction() {
        let a = CounterFile { instructions_committed: 100, loads: 5, ..Default::default() };
        let b = CounterFile { instructions_committed: 300, loads: 20, ..Default::default() };
        let w = b.since(&a);
        assert_eq!(w.instructions_committed, 200);
        assert_eq!(w.loads, 15);
    }

    #[test]
    fn ipc_guards_division_by_zero() {
        assert_eq!(CounterFile::default().ipc(), 0.0);
        let c =
            CounterFile { instructions_committed: 200, unhalted_cycles: 100, ..Default::default() };
        assert_eq!(c.ipc(), 2.0);
    }

    #[test]
    fn freq_meter_reads_pstate_frequency_under_duty_cycling() {
        // 1 M cycles at 1.2 GHz take 833,333 ns unhalted. Even if the core
        // was halted for 10x that in wall time, the meter must read 1200.
        let mut m = FreqMeter::new();
        m.record(1e6, 1e6 / 1200.0 * 1e3);
        assert!((m.avg_mhz() - 1200.0).abs() < 1e-6);
    }

    #[test]
    fn freq_meter_averages_dithered_pstates() {
        let mut m = FreqMeter::new();
        // Half the unhalted time at 2700, half at 1200 (time-weighted mean).
        m.record(2700.0 * 10.0, 10.0 * 1e3);
        m.record(1200.0 * 10.0, 10.0 * 1e3);
        assert!((m.avg_mhz() - (2700.0 + 1200.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn merge_combines_windows() {
        let mut a = FreqMeter::new();
        let mut b = FreqMeter::new();
        a.record(2700.0, 1e3);
        b.record(1200.0, 1e3);
        a.merge(&b);
        assert!((a.avg_mhz() - 1950.0).abs() < 1e-6);
    }
}
