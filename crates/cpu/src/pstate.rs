//! ACPI P-states: the DVFS operating points.
//!
//! The paper's E5-2680 exposes 16 P-states (§III). Public Sandy Bridge
//! documentation puts them at 100 MHz steps from 1.2 GHz to the 2.7 GHz
//! nominal — exactly 16 points — with core voltage tracking frequency
//! roughly linearly between ~0.75 V and ~1.05 V. P0 is the fastest state;
//! higher numbers are slower and cheaper, as §II describes.

/// One operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PState {
    /// Index: 0 = fastest.
    pub index: u8,
    /// Core frequency in MHz.
    pub freq_mhz: f64,
    /// Core voltage in volts.
    pub volts: f64,
}

/// The ordered table of P-states for a part.
#[derive(Clone, Debug)]
pub struct PStateTable {
    states: Vec<PState>,
}

impl PStateTable {
    /// The E5-2680 table: 2700 → 1200 MHz in 100 MHz steps (16 states).
    ///
    /// The paper's Table II reads 2701 MHz at baseline — turbo was off on
    /// the testbed — so this non-turbo table is the study's default.
    pub fn e5_2680() -> Self {
        let n = 16u32;
        let states = (0..n)
            .map(|i| {
                let freq_mhz = 2700.0 - 100.0 * i as f64;
                // Linear V/f: 1.05 V at 2.7 GHz down to 0.78 V at 1.2 GHz.
                let volts = 0.78 + (freq_mhz - 1200.0) / (2700.0 - 1200.0) * (1.05 - 0.78);
                PState { index: i as u8, freq_mhz, volts }
            })
            .collect();
        PStateTable { states }
    }

    /// The same part with single-core Turbo Boost enabled: a 3.5 GHz
    /// (max single-core turbo bin of the E5-2680) P0 at elevated voltage
    /// prepended to the nominal table. Used by the turbo ablation to show
    /// how capping consumes the turbo headroom first.
    pub fn e5_2680_turbo() -> Self {
        let mut base = Self::e5_2680();
        let mut states = vec![PState { index: 0, freq_mhz: 3500.0, volts: 1.12 }];
        for s in base.states.drain(..) {
            states.push(PState { index: s.index + 1, freq_mhz: s.freq_mhz, volts: s.volts });
        }
        PStateTable { states }
    }

    pub fn len(&self) -> usize {
        self.states.len()
    }

    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The fastest state (P0).
    pub fn fastest(&self) -> PState {
        self.states[0]
    }

    /// The slowest state (P-min).
    pub fn slowest(&self) -> PState {
        *self.states.last().expect("non-empty table")
    }

    /// State by index, clamped into range.
    pub fn get(&self, index: u8) -> PState {
        let i = (index as usize).min(self.states.len() - 1);
        self.states[i]
    }

    /// All states in order.
    pub fn iter(&self) -> impl Iterator<Item = &PState> {
        self.states.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_table_has_16_states_spanning_published_range() {
        let t = PStateTable::e5_2680();
        assert_eq!(t.len(), 16);
        assert_eq!(t.fastest().freq_mhz, 2700.0);
        assert_eq!(t.slowest().freq_mhz, 1200.0);
    }

    #[test]
    fn frequency_and_voltage_decrease_with_index() {
        let t = PStateTable::e5_2680();
        let mut prev: Option<PState> = None;
        for s in t.iter() {
            if let Some(p) = prev {
                assert!(s.freq_mhz < p.freq_mhz);
                assert!(s.volts < p.volts);
            }
            prev = Some(*s);
        }
    }

    #[test]
    fn get_clamps_out_of_range_indices() {
        let t = PStateTable::e5_2680();
        assert_eq!(t.get(200).freq_mhz, 1200.0);
        assert_eq!(t.get(0).freq_mhz, 2700.0);
    }

    #[test]
    fn turbo_table_prepends_a_3500mhz_p0() {
        let t = PStateTable::e5_2680_turbo();
        assert_eq!(t.len(), 17);
        assert_eq!(t.fastest().freq_mhz, 3500.0);
        assert_eq!(t.get(1).freq_mhz, 2700.0);
        assert_eq!(t.slowest().freq_mhz, 1200.0);
        // Still strictly ordered.
        let freqs: Vec<f64> = t.iter().map(|s| s.freq_mhz).collect();
        assert!(freqs.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn dynamic_power_ratio_across_the_table_is_substantial() {
        // C·f·V² at P0 vs P15: the DVFS lever the controller uses first.
        let t = PStateTable::e5_2680();
        let p = |s: PState| s.freq_mhz * s.volts * s.volts;
        let ratio = p(t.fastest()) / p(t.slowest());
        assert!(ratio > 3.5, "got {ratio}");
    }
}
