//! ACPI C-states: idle states for cores with nothing to run.
//!
//! §II of the paper: "C-states allow an idle processor (in any other
//! C-state besides C0) to turn off unused components to save power. Higher
//! C-state numbers represent deeper CPU sleep states (with slower wake-up
//! times)." The race-to-idle ablation (EXPERIMENTS.md X2) uses these
//! numbers to compare "sprint at P0 then park in C6" against "crawl at
//! P-min in C0".

/// Idle states of a Sandy Bridge core. Power fractions are relative to the
/// core's active power at P-min; wake latencies follow public SNB data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CState {
    /// Executing (not idle).
    C0,
    /// Halt: clocks stopped, caches live.
    C1,
    /// Deeper sleep: clocks off, L1/L2 flushed.
    C3,
    /// Power gate: core voltage removed.
    C6,
}

impl CState {
    /// Residual power as a fraction of the core's P-min active power.
    pub fn power_frac(self) -> f64 {
        match self {
            CState::C0 => 1.0,
            CState::C1 => 0.30,
            CState::C3 => 0.12,
            CState::C6 => 0.02,
        }
    }

    /// Wake-up latency in nanoseconds.
    pub fn wake_ns(self) -> f64 {
        match self {
            CState::C0 => 0.0,
            CState::C1 => 1_000.0,
            CState::C3 => 50_000.0,
            CState::C6 => 100_000.0,
        }
    }

    /// Whether entering this state flushes the core's private caches.
    pub fn flushes_caches(self) -> bool {
        matches!(self, CState::C3 | CState::C6)
    }

    /// The deepest state whose wake latency fits within `budget_ns` —
    /// the classic idle-governor decision.
    pub fn deepest_within(budget_ns: f64) -> CState {
        if budget_ns >= CState::C6.wake_ns() * 3.0 {
            CState::C6
        } else if budget_ns >= CState::C3.wake_ns() * 3.0 {
            CState::C3
        } else if budget_ns >= CState::C1.wake_ns() * 3.0 {
            CState::C1
        } else {
            CState::C0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_states_save_more_power_but_wake_slower() {
        let order = [CState::C0, CState::C1, CState::C3, CState::C6];
        for w in order.windows(2) {
            assert!(w[1].power_frac() < w[0].power_frac());
            assert!(w[1].wake_ns() > w[0].wake_ns());
        }
    }

    #[test]
    fn governor_picks_deepest_affordable_state() {
        assert_eq!(CState::deepest_within(1e9), CState::C6);
        assert_eq!(CState::deepest_within(200_000.0), CState::C3);
        assert_eq!(CState::deepest_within(5_000.0), CState::C1);
        assert_eq!(CState::deepest_within(100.0), CState::C0);
    }

    #[test]
    fn cache_flush_semantics() {
        assert!(!CState::C1.flushes_caches());
        assert!(CState::C6.flushes_caches());
    }
}
