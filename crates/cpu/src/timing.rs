//! Core timing parameters.
//!
//! The machine charges each committed basic block
//! `instructions / issue_width` base cycles, then adds memory latency with
//! a memory-level-parallelism exposure factor: modern out-of-order cores
//! hide L1 hits entirely and overlap a fraction of miss latency with
//! independent work. The exposure factors below were calibrated so the
//! simulated memory mountain reproduces the paper's Figure 3 plateaus.

/// Knobs of the analytic core timing model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingParams {
    /// Sustained issue width (instructions per cycle for pure compute).
    pub issue_width: f64,
    /// Fraction of cache-level latency (beyond the L1 hit) exposed on the
    /// critical path.
    pub cache_exposed: f64,
    /// Fraction of DRAM latency exposed on the critical path.
    pub dram_exposed: f64,
    /// Cycles charged per branch misprediction (pipeline refill).
    pub mispredict_cycles: u64,
    /// Wrong-path instructions executed per misprediction (bounds the
    /// executed-vs-committed gap; paper observed ≤0.36 %).
    pub wrong_path_instrs: u64,
}

impl TimingParams {
    /// Sandy Bridge-like defaults.
    pub fn e5_2680() -> Self {
        TimingParams {
            issue_width: 3.0,
            cache_exposed: 0.85,
            dram_exposed: 0.80,
            mispredict_cycles: 17,
            wrong_path_instrs: 8,
        }
    }

    /// Base cycles for `n` committed instructions.
    #[inline]
    pub fn base_cycles(&self, n: u64) -> f64 {
        n as f64 / self.issue_width
    }

    pub fn validate(&self) {
        assert!(self.issue_width > 0.0);
        assert!((0.0..=1.0).contains(&self.cache_exposed));
        assert!((0.0..=1.0).contains(&self.dram_exposed));
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::e5_2680()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        TimingParams::e5_2680().validate();
    }

    #[test]
    fn base_cycles_scale_with_issue_width() {
        let t = TimingParams { issue_width: 4.0, ..TimingParams::e5_2680() };
        assert_eq!(t.base_cycles(400), 100.0);
    }

    #[test]
    #[should_panic]
    fn exposure_beyond_one_is_rejected() {
        TimingParams { dram_exposed: 1.5, ..TimingParams::e5_2680() }.validate();
    }
}
