//! `capsim-cpu` — core-side substrate: simulated time, ACPI power states
//! and the per-core performance-counter file.
//!
//! The pieces here model what §II of the paper describes:
//!
//! * **P-states** ([`pstate`]) — the 16 frequency/voltage operating points
//!   of the E5-2680 that DVFS dithers between,
//! * **T-states** ([`tstate`]) — duty-cycle clock modulation, the mechanism
//!   that lets measured frequency stay pinned at P-min while execution time
//!   keeps growing at the lowest caps,
//! * **C-states** ([`cstate`]) — idle states used by the race-to-idle
//!   ablation,
//! * a **gshare branch predictor** ([`branch`]) that produces the paper's
//!   executed-vs-committed instruction gap via wrong-path work,
//! * the **simulated clock** ([`clock`]) integrating cycles over a varying
//!   frequency, and
//! * the **counter file** ([`counters`]) backing the PAPI facade,
//!   including the APERF/MPERF-style frequency meter.

pub mod branch;
pub mod clock;
pub mod counters;
pub mod cstate;
pub mod pstate;
pub mod timing;
pub mod tstate;

pub use branch::{BranchOutcome, GsharePredictor};
pub use clock::SimClock;
pub use counters::{CounterFile, FreqMeter};
pub use cstate::CState;
pub use pstate::{PState, PStateTable};
pub use timing::TimingParams;
pub use tstate::TState;
