//! The simulated clock.
//!
//! Simulated time is a monotonically increasing `f64` of nanoseconds.
//! Cycles executed at a given frequency advance time by `cycles / f`;
//! DRAM time advances it directly. `f64` nanoseconds carry ~53 bits of
//! mantissa — exact to the picosecond for runs up to days of simulated
//! time, far beyond anything the harness produces.

/// Monotonic simulated time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimClock {
    now_ns: f64,
}

impl SimClock {
    pub fn new() -> Self {
        SimClock { now_ns: 0.0 }
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now_s(&self) -> f64 {
        self.now_ns * 1e-9
    }

    /// Advance by `cycles` executed at `freq_mhz`. Returns the elapsed ns.
    #[inline]
    pub fn advance_cycles(&mut self, cycles: f64, freq_mhz: f64) -> f64 {
        debug_assert!(freq_mhz > 0.0);
        let dt = cycles * 1e3 / freq_mhz; // MHz → cycles/µs → ns
        self.now_ns += dt;
        dt
    }

    /// Advance by raw nanoseconds (DRAM or idle time).
    #[inline]
    pub fn advance_ns(&mut self, ns: f64) {
        debug_assert!(ns >= 0.0);
        self.now_ns += ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_at_2700mhz_take_the_right_time() {
        let mut c = SimClock::new();
        let dt = c.advance_cycles(2700.0, 2700.0);
        assert!((dt - 1000.0).abs() < 1e-9, "2700 cycles at 2.7 GHz = 1 µs");
        assert!((c.now_ns() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn lower_frequency_stretches_time() {
        let mut hi = SimClock::new();
        let mut lo = SimClock::new();
        hi.advance_cycles(1e6, 2700.0);
        lo.advance_cycles(1e6, 1200.0);
        assert!((lo.now_ns() / hi.now_ns() - 2700.0 / 1200.0).abs() < 1e-9);
    }

    #[test]
    fn ns_advance_accumulates() {
        let mut c = SimClock::new();
        c.advance_ns(50.0);
        c.advance_ns(0.0);
        c.advance_ns(10.0);
        assert_eq!(c.now_ns(), 60.0);
        assert!((c.now_s() - 60e-9).abs() < 1e-20);
    }
}
