//! T-states: duty-cycle clock modulation.
//!
//! When DVFS bottoms out at P-min and the node is still over its cap, the
//! firmware modulates the clock: the core runs for `on` of every 16 clock
//! windows and is halted for the rest. Crucially, halted windows do not
//! advance the APERF-style unhalted-cycle counter, so a frequency meter
//! that divides unhalted cycles by unhalted time keeps reading the P-state
//! frequency — the paper's Table II shows exactly that signature (frequency
//! pinned at 1200 while execution time grows another order of magnitude).

/// Clock-modulation setting: the core is clocked `on_16/16` of the time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TState {
    on_16: u8,
}

impl TState {
    /// Full speed (no modulation).
    pub const FULL: TState = TState { on_16: 16 };
    /// The deepest modulation the firmware will use (1/16 duty).
    pub const MIN: TState = TState { on_16: 1 };

    /// Construct from a numerator of 16; clamped to `1..=16`.
    pub fn of_16(on: u8) -> TState {
        TState { on_16: on.clamp(1, 16) }
    }

    /// Duty fraction in `(0, 1]`.
    pub fn duty(self) -> f64 {
        self.on_16 as f64 / 16.0
    }

    /// The numerator of the duty fraction.
    pub fn on_16(self) -> u8 {
        self.on_16
    }

    /// One step deeper (slower), saturating at 1/16.
    pub fn deeper(self) -> TState {
        TState::of_16(self.on_16.saturating_sub(1).max(1))
    }

    /// One step shallower (faster), saturating at 16/16.
    pub fn shallower(self) -> TState {
        TState::of_16((self.on_16 + 1).min(16))
    }

    /// Wall-time stretch factor relative to unmodulated execution.
    pub fn stretch(self) -> f64 {
        16.0 / self.on_16 as f64
    }
}

impl Default for TState {
    fn default() -> Self {
        TState::FULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_duty_has_no_stretch() {
        assert_eq!(TState::FULL.duty(), 1.0);
        assert_eq!(TState::FULL.stretch(), 1.0);
    }

    #[test]
    fn min_duty_stretches_16x() {
        assert_eq!(TState::MIN.duty(), 1.0 / 16.0);
        assert_eq!(TState::MIN.stretch(), 16.0);
    }

    #[test]
    fn deeper_and_shallower_saturate() {
        assert_eq!(TState::MIN.deeper(), TState::MIN);
        assert_eq!(TState::FULL.shallower(), TState::FULL);
        assert_eq!(TState::of_16(8).deeper(), TState::of_16(7));
        assert_eq!(TState::of_16(8).shallower(), TState::of_16(9));
    }

    #[test]
    fn construction_clamps() {
        assert_eq!(TState::of_16(0), TState::MIN);
        assert_eq!(TState::of_16(200), TState::FULL);
    }
}
