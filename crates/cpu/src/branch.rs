//! A gshare branch predictor.
//!
//! The paper notes that the number of instructions *committed* is identical
//! across power caps while the number *executed* differs slightly (≤0.36 %)
//! because of speculative execution. The machine reproduces that gap by
//! running wrong-path work after each misprediction; this module supplies
//! the mispredictions.

/// Result of consulting the predictor for one branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchOutcome {
    pub predicted_taken: bool,
    pub mispredicted: bool,
}

/// Classic gshare: global history XOR branch PC indexes a table of 2-bit
/// saturating counters.
#[derive(Clone, Debug)]
pub struct GsharePredictor {
    table: Vec<u8>,
    mask: u64,
    history: u64,
    history_bits: u32,
    branches: u64,
    mispredicts: u64,
}

impl GsharePredictor {
    /// `table_bits` log2-sizes the counter table (e.g. 14 → 16 Ki counters).
    pub fn new(table_bits: u32) -> Self {
        assert!((4..=24).contains(&table_bits));
        GsharePredictor {
            table: vec![1; 1 << table_bits], // weakly not-taken
            mask: (1u64 << table_bits) - 1,
            history: 0,
            history_bits: table_bits.min(12),
            branches: 0,
            mispredicts: 0,
        }
    }

    /// Predict and then update with the actual direction.
    pub fn execute(&mut self, pc: u64, taken: bool) -> BranchOutcome {
        self.branches += 1;
        let idx = ((pc >> 2) ^ self.history) & self.mask;
        let ctr = &mut self.table[idx as usize];
        let predicted_taken = *ctr >= 2;
        let mispredicted = predicted_taken != taken;
        if mispredicted {
            self.mispredicts += 1;
        }
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
        BranchOutcome { predicted_taken, mispredicted }
    }

    /// (branches, mispredictions) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.branches, self.mispredicts)
    }

    /// Misprediction rate; 0 if no branches yet.
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_loop_branch_is_learned() {
        let mut p = GsharePredictor::new(10);
        for _ in 0..100 {
            p.execute(0x400_000, true);
        }
        let (b, m) = p.stats();
        assert_eq!(b, 100);
        // History evolves for the first ~12 iterations, touching fresh
        // table entries; after it saturates the branch predicts perfectly.
        assert!(m <= 16, "warmup mispredicts only, got {m}");
    }

    #[test]
    fn alternating_pattern_is_learned_via_history() {
        let mut p = GsharePredictor::new(12);
        let mut miss_late = 0;
        for i in 0..2000 {
            let o = p.execute(0x1234, i % 2 == 0);
            if i > 500 && o.mispredicted {
                miss_late += 1;
            }
        }
        assert!(miss_late < 30, "history should capture alternation: {miss_late}");
    }

    #[test]
    fn random_branches_mispredict_roughly_half() {
        let mut p = GsharePredictor::new(10);
        let mut x = 0x12345u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            p.execute(0x9000, x & 1 == 1);
        }
        let r = p.miss_rate();
        assert!((0.35..0.65).contains(&r), "rate {r}");
    }

    #[test]
    fn distinct_pcs_do_not_destructively_alias_much() {
        let mut p = GsharePredictor::new(14);
        for i in 0..5_000u64 {
            p.execute(0x1000 + (i % 16) * 4, true); // 16 always-taken branches
        }
        assert!(p.miss_rate() < 0.05);
    }
}
