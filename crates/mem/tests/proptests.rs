//! Property-based tests for the memory substrate's core invariants.

use proptest::prelude::*;

use capsim_mem::{
    AccessKind, CacheGeometry, HierarchyConfig, MemGateLevel, MemReconfig, MemoryHierarchy,
    PageTable, ReplacementPolicy, SetAssocCache, Tlb, TlbGeometry, VAddr,
};

fn small_geom(ways: u32, sets: u32, policy: ReplacementPolicy) -> CacheGeometry {
    CacheGeometry {
        size_bytes: 64 * ways as u64 * sets as u64,
        line_bytes: 64,
        ways,
        hit_cycles: 4,
        policy,
    }
}

proptest! {
    /// A line just accessed is always resident (until another access).
    #[test]
    fn cache_access_makes_line_resident(
        lines in proptest::collection::vec(0u64..10_000, 1..200),
        ways in 1u32..8,
        write_mask in any::<u64>(),
    ) {
        let mut c = SetAssocCache::new(small_geom(ways, 8, ReplacementPolicy::Lru), 1);
        for (i, &l) in lines.iter().enumerate() {
            let kind = if write_mask >> (i % 64) & 1 == 1 { AccessKind::Write } else { AccessKind::Read };
            c.access(l, kind);
            prop_assert!(c.probe(l), "line {l} must be resident right after access");
        }
    }

    /// Hits + misses == accesses, and a repeat pass over a small working
    /// set that fits never misses.
    #[test]
    fn cache_stats_are_consistent(lines in proptest::collection::vec(0u64..64, 1..64)) {
        let mut c = SetAssocCache::new(small_geom(8, 8, ReplacementPolicy::Lru), 2);
        for &l in &lines {
            c.access(l, AccessKind::Read);
        }
        let (acc, misses, _) = c.stats();
        prop_assert_eq!(acc, lines.len() as u64);
        prop_assert!(misses <= acc);
        // The 64-line working set fits the 64-line cache exactly.
        for &l in &lines {
            prop_assert!(c.probe(l));
        }
    }

    /// Way gating never loses correctness: after any gating sequence the
    /// cache still caches (access → probe).
    #[test]
    fn way_gating_sequences_preserve_functionality(
        gates in proptest::collection::vec(1u32..=8, 1..10),
        line in 0u64..1000,
    ) {
        let mut c = SetAssocCache::new(small_geom(8, 16, ReplacementPolicy::TreePlru), 3);
        for g in gates {
            c.set_active_ways(g);
            c.access(line, AccessKind::Read);
            prop_assert!(c.probe(line));
            prop_assert_eq!(c.active_ways(), g);
        }
    }

    /// Gated capacity is proportional to active ways.
    #[test]
    fn effective_capacity_scales_with_ways(ways in 1u32..=20) {
        let geom = HierarchyConfig::e5_2680().l3;
        let mut c = SetAssocCache::new(geom, 4);
        c.set_active_ways(ways);
        prop_assert_eq!(c.effective_bytes(), geom.sets() * 64 * ways.min(20) as u64);
    }

    /// TLB: an inserted translation is immediately visible and correct.
    #[test]
    fn tlb_insert_then_lookup(vpns in proptest::collection::vec(0u64..100_000, 1..100)) {
        let g = TlbGeometry { entries: 64, ways: 4, policy: ReplacementPolicy::Lru };
        let mut t = Tlb::new(g, 5);
        for &v in &vpns {
            if t.lookup(v).is_none() {
                t.insert(v, v * 7 + 1);
            }
            prop_assert_eq!(t.lookup(v), Some(v * 7 + 1));
        }
        let (lookups, misses) = t.stats();
        prop_assert!(misses <= lookups);
    }

    /// Page translation is a function (same VA → same PA) and preserves
    /// page offsets; distinct pages get distinct frames.
    #[test]
    fn page_table_functionality(addrs in proptest::collection::vec(0u64..(1u64 << 40), 1..200), salt in any::<u64>()) {
        let mut pt = PageTable::new(salt);
        let mut seen = std::collections::HashMap::new();
        for &a in &addrs {
            let va = VAddr(a);
            let pa = pt.translate(va);
            prop_assert_eq!(pa.0 & 0xfff, a & 0xfff, "offset preserved");
            prop_assert_eq!(pt.translate(va), pa, "stable");
            if let Some(&prev_ppn) = seen.get(&va.vpn()) {
                prop_assert_eq!(pa.ppn(), prev_ppn);
            } else {
                prop_assert!(
                    seen.values().all(|&p| p != pa.ppn()),
                    "no frame aliasing among sampled pages"
                );
                seen.insert(va.vpn(), pa.ppn());
            }
        }
    }

    /// Hierarchy-wide: latency is never negative, stats only grow, and a
    /// repeated access is never slower than a cold one at the same state.
    #[test]
    fn hierarchy_latency_and_stats_sane(
        addrs in proptest::collection::vec(0u64..(1u64 << 24), 1..100),
    ) {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny(), 1, 9);
        let mut prev_total = 0u64;
        for &a in &addrs {
            let va = VAddr(0x100_0000 + a);
            let cold = h.data_access(0, va, false);
            let warm = h.data_access(0, va, false);
            prop_assert!(cold.ns >= 0.0 && warm.ns >= 0.0);
            prop_assert!(warm.cycles <= cold.cycles, "warm {} > cold {}", warm.cycles, cold.cycles);
            let s = h.stats(0);
            let total = s.l1d_accesses + s.l2_accesses + s.l3_accesses;
            prop_assert!(total >= prev_total);
            prev_total = total;
            prop_assert!(s.l1d_misses <= s.l1d_accesses);
            prop_assert!(s.dtlb_misses <= s.dtlb_lookups);
        }
    }

    /// Reconfiguration round-trips: whatever we apply is what the
    /// hierarchy reports (clamped to provisioned geometry).
    #[test]
    fn reconfig_roundtrip(
        l2w in 1u32..=8,
        l3w in 1u32..=20,
        itlb in 1u32..=128,
        gate in 0usize..5,
    ) {
        let mut h = MemoryHierarchy::new(HierarchyConfig::e5_2680(), 1, 11);
        let r = MemReconfig {
            l1d_ways: 8,
            l1i_ways: 8,
            l2_ways: l2w,
            l3_ways: l3w,
            itlb_entries: itlb,
            dtlb_entries: 64,
            mem_gate: MemGateLevel::ALL[gate],
        };
        h.apply(r);
        let cur = h.current_reconfig();
        prop_assert_eq!(cur.l2_ways, l2w);
        prop_assert_eq!(cur.l3_ways, l3w);
        prop_assert_eq!(cur.mem_gate, MemGateLevel::ALL[gate]);
        // TLB entries quantize to whole ways (32-entry granularity here).
        prop_assert!(cur.itlb_entries >= 32 && cur.itlb_entries <= 128);
        prop_assert!(cur.itlb_entries <= itlb.max(32));
    }

    /// The allocation-free translation fast path (last-page memo plus
    /// TLB-cached PPNs) must agree with `PageTable::translate` on every
    /// access. `translate` is a pure function of (salt, VPN), so an
    /// independent shadow table with the same salt is an oracle for the
    /// whole sequence — including after reconfigs and flushes, which
    /// invalidate the memos and TLB entries but never change the mapping.
    #[test]
    fn tlb_fast_path_matches_page_table(
        ops in proptest::collection::vec((0u8..8, 0u64..48, any::<u16>()), 1..300),
        salt in any::<u64>(),
    ) {
        let mut m = MemoryHierarchy::new(HierarchyConfig::tiny().with_stlb(), 2, salt);
        let mut shadow = PageTable::new(salt);
        for &(op, page, off) in &ops {
            let va = VAddr(0x40_0000 + page * 4096 + off as u64 % 4096);
            match op {
                0..=2 => {
                    let out = m.data_access(0, va, op == 2);
                    prop_assert_eq!(out.paddr, shadow.translate(va));
                }
                3 => {
                    let out = m.fetch_access(0, va);
                    prop_assert_eq!(out.paddr, shadow.translate(va));
                }
                4 => {
                    // A second core has its own memos and TLBs but shares
                    // the page table.
                    let out = m.data_access(1, va, false);
                    prop_assert_eq!(out.paddr, shadow.translate(va));
                }
                5 => {
                    let mut r = m.current_reconfig();
                    r.dtlb_entries = 1 + off as u32 % 64;
                    r.itlb_entries = 1 + off as u32 % 128;
                    m.apply(r);
                }
                6 => m.flush_all(),
                _ => {
                    // Batched path runs the same per-line fast path (with
                    // its internal cross-check) over a few lines.
                    m.access_range(0, va, 256, false);
                }
            }
        }
    }
}
