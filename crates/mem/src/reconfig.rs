//! Runtime memory-hierarchy reconfiguration requests.
//!
//! A [`MemReconfig`] is the unit the BMC firmware applies when the capping
//! ladder goes beyond DVFS: it names the active way counts for each cache
//! level, the active TLB entry counts, and the memory-gating level. The
//! hierarchy applies it atomically (flushing whatever gating removes).

use crate::dram::MemGateLevel;

/// A complete memory-side configuration. `Default`/[`MemReconfig::full`]
/// is the un-throttled machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemReconfig {
    /// Active ways in each L1 data cache (1..=provisioned).
    pub l1d_ways: u32,
    /// Active ways in each L1 instruction cache.
    pub l1i_ways: u32,
    /// Active ways in each private L2.
    pub l2_ways: u32,
    /// Active ways in the shared L3.
    pub l3_ways: u32,
    /// Active ITLB entries.
    pub itlb_entries: u32,
    /// Active DTLB entries.
    pub dtlb_entries: u32,
    /// Memory-gating level.
    pub mem_gate: MemGateLevel,
}

impl MemReconfig {
    /// The full (unthrottled) configuration of the paper's platform.
    pub fn full() -> Self {
        MemReconfig {
            l1d_ways: 8,
            l1i_ways: 8,
            l2_ways: 8,
            l3_ways: 20,
            itlb_entries: 128,
            dtlb_entries: 64,
            mem_gate: MemGateLevel::Off,
        }
    }

    /// True if nothing is throttled.
    pub fn is_full(&self) -> bool {
        *self == Self::full()
    }

    /// A coarse "how much of the memory system is gated" metric in
    /// `[0, 1]`, used by the power model to estimate array-power savings.
    pub fn gating_fraction(&self) -> f64 {
        let full = Self::full();
        let way_frac = |active: u32, total: u32| 1.0 - active as f64 / total as f64;
        let mut f = 0.0;
        f += way_frac(self.l1d_ways, full.l1d_ways);
        f += way_frac(self.l1i_ways, full.l1i_ways);
        f += way_frac(self.l2_ways, full.l2_ways);
        f += way_frac(self.l3_ways, full.l3_ways);
        f += way_frac(self.itlb_entries, full.itlb_entries);
        f += way_frac(self.dtlb_entries, full.dtlb_entries);
        f / 6.0
    }
}

impl Default for MemReconfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_has_zero_gating_fraction() {
        assert!(MemReconfig::full().is_full());
        assert_eq!(MemReconfig::full().gating_fraction(), 0.0);
    }

    #[test]
    fn gating_fraction_grows_with_throttling() {
        let mut c = MemReconfig::full();
        c.l3_ways = 10;
        let f1 = c.gating_fraction();
        assert!(f1 > 0.0);
        c.itlb_entries = 16;
        let f2 = c.gating_fraction();
        assert!(f2 > f1);
        assert!(f2 <= 1.0);
    }
}
