//! Translation lookaside buffers with runtime entry shrink.
//!
//! The TLB caches VPN→PPN translations. Entry shrink
//! ([`Tlb::set_active_entries`]) models the power-saving TLB
//! reconfiguration the paper infers behind the 6,395%/8,481% iTLB-miss
//! blowups at the 125/120 W caps: entries beyond the active count are
//! invalidated and excluded from lookup, so a code or data footprint that
//! comfortably fit before now thrashes.

use crate::config::TlbGeometry;
use crate::replacement::{SetState, XorShift64};

#[derive(Clone, Debug)]
struct TlbSet {
    vpns: Vec<u64>,
    ppns: Vec<u64>,
    valid: u64,
    repl: SetState,
}

/// A set-associative TLB. Entry shrink removes whole ways (uniformly
/// across sets), mirroring how SRAM banks gate.
#[derive(Clone, Debug)]
pub struct Tlb {
    geom: TlbGeometry,
    active_ways: u32,
    sets: Vec<TlbSet>,
    set_mask: u64,
    rng: XorShift64,
    lookups: u64,
    misses: u64,
}

impl Tlb {
    pub fn new(geom: TlbGeometry, seed: u64) -> Self {
        geom.validate();
        let sets = (0..geom.sets())
            .map(|_| TlbSet {
                vpns: vec![0; geom.ways as usize],
                ppns: vec![0; geom.ways as usize],
                valid: 0,
                repl: SetState::new(geom.policy, geom.ways),
            })
            .collect();
        Tlb {
            geom,
            active_ways: geom.ways,
            sets,
            set_mask: geom.sets() as u64 - 1,
            rng: XorShift64::new(seed),
            lookups: 0,
            misses: 0,
        }
    }

    pub fn geometry(&self) -> &TlbGeometry {
        &self.geom
    }

    /// Entries currently active (ways × sets).
    pub fn active_entries(&self) -> u32 {
        self.active_ways * self.geom.sets()
    }

    /// Look up `vpn`. On a hit returns the cached PPN; on a miss returns
    /// `None` (the caller performs the page walk and then calls
    /// [`Tlb::insert`]).
    pub fn lookup(&mut self, vpn: u64) -> Option<u64> {
        self.lookups += 1;
        let si = (vpn & self.set_mask) as usize;
        let set = &mut self.sets[si];
        for way in 0..self.active_ways {
            let bit = 1u64 << way;
            if set.valid & bit != 0 && set.vpns[way as usize] == vpn {
                set.repl.touch(way);
                return Some(set.ppns[way as usize]);
            }
        }
        self.misses += 1;
        None
    }

    /// Install a translation after a walk.
    pub fn insert(&mut self, vpn: u64, ppn: u64) {
        let si = (vpn & self.set_mask) as usize;
        let active = self.active_ways;
        let set = &mut self.sets[si];
        let way = (0..active)
            .find(|&w| set.valid & (1 << w) == 0)
            .unwrap_or_else(|| set.repl.victim(active, &mut self.rng));
        set.vpns[way as usize] = vpn;
        set.ppns[way as usize] = ppn;
        set.valid |= 1 << way;
        set.repl.touch(way);
    }

    /// Shrink (or re-grow) the active entry count. `entries` is rounded
    /// down to a whole number of ways and clamped to at least one way's
    /// worth. Invalidated entries are lost.
    pub fn set_active_entries(&mut self, entries: u32) {
        let per_way = self.geom.sets();
        let ways = (entries / per_way).clamp(1, self.geom.ways);
        if ways < self.active_ways {
            for set in &mut self.sets {
                for w in ways..self.active_ways {
                    set.valid &= !(1u64 << w);
                }
            }
        }
        self.active_ways = ways;
    }

    /// Drop every cached translation (context switch / reset).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.valid = 0;
        }
    }

    /// (lookups, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use crate::replacement::ReplacementPolicy;

    fn tlb(entries: u32, ways: u32) -> Tlb {
        Tlb::new(TlbGeometry { entries, ways, policy: ReplacementPolicy::Lru }, 7)
    }

    #[test]
    fn miss_then_hit_after_insert() {
        let mut t = tlb(16, 4);
        assert_eq!(t.lookup(5), None);
        t.insert(5, 500);
        assert_eq!(t.lookup(5), Some(500));
        assert_eq!(t.stats(), (2, 1));
    }

    #[test]
    fn footprint_within_reach_never_misses_after_warmup() {
        let mut t = tlb(64, 4);
        for vpn in 0..64u64 {
            if t.lookup(vpn).is_none() {
                t.insert(vpn, vpn + 1000);
            }
        }
        let (_, m0) = t.stats();
        for _ in 0..10 {
            for vpn in 0..64u64 {
                assert!(t.lookup(vpn).is_some());
            }
        }
        assert_eq!(t.stats().1, m0);
    }

    #[test]
    fn shrink_causes_thrashing_on_previously_fitting_footprint() {
        let mut t = tlb(64, 4);
        // Warm 48 pages (fits in 64 entries).
        for vpn in 0..48u64 {
            if t.lookup(vpn).is_none() {
                t.insert(vpn, vpn);
            }
        }
        t.set_active_entries(16); // 1 way x 16 sets
        let (_, m0) = t.stats();
        let mut misses = 0;
        for _ in 0..5 {
            for vpn in 0..48u64 {
                if t.lookup(vpn).is_none() {
                    t.insert(vpn, vpn);
                    misses += 1;
                }
            }
        }
        assert!(misses >= 5 * 48 / 2, "shrunk TLB thrashes: {misses}");
        assert!(t.stats().1 > m0);
    }

    #[test]
    fn shrink_clamps_to_at_least_one_way() {
        let mut t = tlb(16, 4);
        t.set_active_entries(0);
        assert_eq!(t.active_entries(), 4); // one way x 4 sets
        t.insert(9, 90);
        assert_eq!(t.lookup(9), Some(90));
    }

    #[test]
    fn regrow_restores_capacity_but_not_contents() {
        let mut t = tlb(16, 4);
        t.insert(1, 10);
        t.set_active_entries(4);
        t.set_active_entries(16);
        assert_eq!(t.active_entries(), 16);
        // Entry may have been in a gated way; at minimum the TLB works.
        t.insert(2, 20);
        assert_eq!(t.lookup(2), Some(20));
    }

    #[test]
    fn e5_itlb_geometry() {
        let g = HierarchyConfig::e5_2680().itlb;
        let t = Tlb::new(g, 1);
        assert_eq!(t.active_entries(), 128);
    }
}
