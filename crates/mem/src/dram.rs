//! DRAM timing and *memory gating*.
//!
//! Memory gating is the deepest rung of the capping ladder: the memory
//! controller duty-cycles DRAM (fewer scheduling slots, slower exits from
//! power-down states), trading large latency multipliers for a few watts of
//! background power. The paper's Figure 4 shows its fingerprint — every
//! level of the memory mountain gets slower and noisier under the 120 W cap
//! — and SIRE/RSM's +2,583 % blow-up at 120 W is its end-to-end cost.
//!
//! Latency here is expressed in nanoseconds because DRAM timing does not
//! scale with core DVFS.

/// Discrete memory-gating levels, ordered from none to most aggressive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum MemGateLevel {
    #[default]
    Off,
    /// Light throttling: ~2× latency.
    Light,
    /// Medium: ~4× latency.
    Medium,
    /// Heavy: ~8× latency.
    Heavy,
    /// Severe: ~16× latency, the 120 W regime.
    Severe,
}

impl MemGateLevel {
    /// All levels, escalation order.
    pub const ALL: [MemGateLevel; 5] = [
        MemGateLevel::Off,
        MemGateLevel::Light,
        MemGateLevel::Medium,
        MemGateLevel::Heavy,
        MemGateLevel::Severe,
    ];

    /// Latency multiplier applied to every DRAM access.
    pub fn latency_mult(self) -> f64 {
        match self {
            MemGateLevel::Off => 1.0,
            MemGateLevel::Light => 2.0,
            MemGateLevel::Medium => 4.0,
            MemGateLevel::Heavy => 8.0,
            MemGateLevel::Severe => 16.0,
        }
    }

    /// Fraction of DRAM background power still consumed at this level.
    /// (Used by the power model; gating saves only a few watts — the
    /// paper's point that the deepest techniques buy little power for
    /// enormous slowdowns.)
    pub fn background_power_frac(self) -> f64 {
        match self {
            MemGateLevel::Off => 1.0,
            MemGateLevel::Light => 0.97,
            MemGateLevel::Medium => 0.93,
            MemGateLevel::Heavy => 0.88,
            MemGateLevel::Severe => 0.84,
        }
    }
}

/// The DRAM device model.
#[derive(Clone, Debug)]
pub struct DramModel {
    base_ns: f64,
    gate: MemGateLevel,
    reads: u64,
    writes: u64,
    /// Simple open-row tracking per bank for a mild locality bonus.
    open_rows: [u64; 16],
    row_hits: u64,
}

impl DramModel {
    pub fn new(base_ns: f64) -> Self {
        DramModel {
            base_ns,
            gate: MemGateLevel::Off,
            reads: 0,
            writes: 0,
            open_rows: [u64::MAX; 16],
            row_hits: 0,
        }
    }

    pub fn gate(&self) -> MemGateLevel {
        self.gate
    }

    pub fn set_gate(&mut self, g: MemGateLevel) {
        self.gate = g;
    }

    /// Access a physical line; returns the latency in nanoseconds.
    ///
    /// A 16-bank open-row model gives sequential streams a ~25 % discount
    /// (row-buffer hits), which is what lets streaming codes like SIRE/RSM
    /// sustain reasonable baseline bandwidth.
    pub fn access(&mut self, line: u64, write: bool) -> f64 {
        if write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        // 2 KiB rows of 64 B lines: 32 lines per row; banks interleave rows.
        let row = line / 32;
        let bank = (row % 16) as usize;
        let row_hit = self.open_rows[bank] == row;
        self.open_rows[bank] = row;
        if row_hit {
            self.row_hits += 1;
        }
        let base = if row_hit { self.base_ns * 0.75 } else { self.base_ns };
        base * self.gate.latency_mult()
    }

    /// (reads, writes, row_hits) since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.reads, self.writes, self.row_hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_levels_monotonically_slower_and_lower_power() {
        let mut prev_lat = 0.0;
        let mut prev_pow = f64::MAX;
        for g in MemGateLevel::ALL {
            assert!(g.latency_mult() > prev_lat);
            assert!(g.background_power_frac() < prev_pow);
            prev_lat = g.latency_mult();
            prev_pow = g.background_power_frac();
        }
    }

    #[test]
    fn sequential_stream_gets_row_hits() {
        let mut d = DramModel::new(50.0);
        for line in 0..320u64 {
            d.access(line, false);
        }
        let (reads, _, hits) = d.stats();
        assert_eq!(reads, 320);
        // 10 rows touched, 31 hits each.
        assert!(hits >= 300);
    }

    #[test]
    fn random_stream_mostly_misses_rows() {
        let mut d = DramModel::new(50.0);
        let mut x = 12345u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            d.access(x >> 20, false);
        }
        let (_, _, hits) = d.stats();
        assert!(hits < 100);
    }

    #[test]
    fn severe_gating_multiplies_latency_16x() {
        let mut d = DramModel::new(50.0);
        let l0 = d.access(1_000_000, false);
        d.set_gate(MemGateLevel::Severe);
        let l1 = d.access(2_000_000, false);
        assert!((l1 / l0 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn writes_are_counted_separately() {
        let mut d = DramModel::new(50.0);
        d.access(1, true);
        d.access(2, false);
        let (r, w, _) = d.stats();
        assert_eq!((r, w), (1, 1));
    }
}
