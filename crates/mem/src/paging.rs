//! Virtual memory: a deterministic page table plus the physical addresses
//! a hardware page walker would touch.
//!
//! The simulated OS maps pages on first touch. The VPN→PPN assignment is a
//! mixing function rather than identity so that physically-indexed caches
//! (L2/L3) don't see artificially perfect conflict behaviour, yet every
//! translation is reproducible without storing a map for the whole address
//! space — only pages actually touched are recorded (for invertibility
//! checks and stats).
//!
//! On a TLB miss the walker issues [`PageTable::walk_addrs`] reads; the
//! hierarchy charges them through L2/L3/DRAM like real radix-tree walks.

use std::collections::HashMap;

use crate::addr::{PAddr, VAddr, PAGE_BITS};

/// Maximum radix-walk depth. Walk paths are returned in fixed storage
/// ([`WalkPath`]), so deeper tables would need a wider array; x86-64
/// (and the paper's E5-2680) walks exactly four levels.
pub const MAX_WALK_LEVELS: u32 = 4;

/// splitmix64 finalizer: a bijective mix with full avalanche, so the low
/// PPN bits (which select the physically-indexed L2/L3 set "chunk") are
/// uniform even for consecutive VPNs. A single multiply is not enough —
/// it visibly biases the low output bits and collapses cache associativity.
#[inline]
fn splitmix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The node addresses one hardware walk touches, root first — at most
/// [`MAX_WALK_LEVELS`], held inline so the walk path never allocates.
/// Derefs to a slice for iteration, indexing and `len()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkPath {
    addrs: [PAddr; MAX_WALK_LEVELS as usize],
    len: u8,
}

impl std::ops::Deref for WalkPath {
    type Target = [PAddr];

    #[inline]
    fn deref(&self) -> &[PAddr] {
        &self.addrs[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a WalkPath {
    type Item = &'a PAddr;
    type IntoIter = std::slice::Iter<'a, PAddr>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A per-machine page table.
#[derive(Clone, Debug)]
pub struct PageTable {
    salt: u64,
    /// Pages touched so far: VPN → PPN (recorded for stats/verification;
    /// the mapping itself is functional and needs no storage).
    mapped: HashMap<u64, u64>,
    walks: u64,
}

impl PageTable {
    /// `salt` distinguishes address spaces (one per machine/process).
    pub fn new(salt: u64) -> Self {
        PageTable { salt, mapped: HashMap::new(), walks: 0 }
    }

    /// Translate a virtual address, recording the page as mapped.
    ///
    /// The VPN→PPN assignment mixes the VPN with the address-space salt and
    /// keeps the top 36 bits — a 64 GiB physical page space, matching the
    /// paper platform's DIMM capacity.
    #[inline]
    pub fn translate(&mut self, v: VAddr) -> PAddr {
        let vpn = v.vpn();
        let salt = self.salt;
        let ppn = *self.mapped.entry(vpn).or_insert_with(|| splitmix(vpn ^ salt) >> 28);
        PAddr((ppn << PAGE_BITS) | v.page_offset())
    }

    /// The physical addresses a 4-level radix walk touches for `vpn`.
    ///
    /// Each level's entry address is derived from the VPN bits that index
    /// that level; entries are 8 bytes, so **eight neighbouring pages
    /// share one 64-byte leaf line** — exactly like x86 page tables, and
    /// the reason real walkers mostly hit in the cache hierarchy instead
    /// of polluting it with one line per page.
    pub fn walk_addrs(&mut self, vpn: u64, levels: u32) -> WalkPath {
        assert!(
            (1..=MAX_WALK_LEVELS).contains(&levels),
            "walk depth {levels} outside 1..={MAX_WALK_LEVELS}"
        );
        self.walks += 1;
        let mut out = WalkPath { addrs: [PAddr(0); MAX_WALK_LEVELS as usize], len: levels as u8 };
        for lvl in 0..levels {
            // Strip the low (9 * (levels-1-lvl)) bits: upper levels cover
            // wider ranges and thus dedupe across neighbouring pages.
            let span = 9 * (levels - 1 - lvl);
            let node_index = vpn >> span;
            // Walker structures live in a reserved physical region, one
            // sub-region per level; 8-byte entries pack 8 per line.
            let node = 0x0f00_0000_0000u64
                + (lvl as u64) * 0x10_0000_0000
                + (node_index.wrapping_mul(8)) % (1 << 32);
            out.addrs[lvl as usize] = PAddr(node);
        }
        out
    }

    /// Number of pages touched so far.
    pub fn pages_mapped(&self) -> usize {
        self.mapped.len()
    }

    /// Number of walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new(42);
        let a = VAddr(0x1234_5678);
        let p1 = pt.translate(a);
        let p2 = pt.translate(a);
        assert_eq!(p1, p2);
    }

    #[test]
    fn offset_is_preserved() {
        let mut pt = PageTable::new(1);
        let v = VAddr(0xabc_def);
        let p = pt.translate(v);
        assert_eq!(p.0 & 0xfff, v.0 & 0xfff);
    }

    #[test]
    fn distinct_pages_map_to_distinct_frames() {
        let mut pt = PageTable::new(7);
        let mut seen = std::collections::HashSet::new();
        for vpn in 0..10_000u64 {
            let p = pt.translate(VAddr(vpn << PAGE_BITS));
            assert!(seen.insert(p.ppn()), "collision at vpn {vpn}");
        }
        assert_eq!(pt.pages_mapped(), 10_000);
    }

    #[test]
    fn different_address_spaces_differ() {
        let mut a = PageTable::new(1);
        let mut b = PageTable::new(2);
        let v = VAddr(0x8000);
        assert_ne!(a.translate(v), b.translate(v));
    }

    #[test]
    fn walk_addresses_share_upper_levels_for_neighbouring_pages() {
        let mut pt = PageTable::new(0);
        let w1 = pt.walk_addrs(100, 4);
        let w2 = pt.walk_addrs(101, 4);
        assert_eq!(w1.len(), 4);
        // Top 3 levels identical, leaf level differs.
        assert_eq!(&w1[..3], &w2[..3]);
        assert_ne!(w1[3], w2[3]);
        assert_eq!(pt.walks(), 2);
    }

    #[test]
    fn far_apart_pages_diverge_higher_up() {
        let mut pt = PageTable::new(0);
        let w1 = pt.walk_addrs(0, 4);
        let w2 = pt.walk_addrs(1 << 27, 4); // differs at the root level
        assert_ne!(w1[0], w2[0]);
    }
}
