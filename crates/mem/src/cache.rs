//! A generic set-associative, write-back, write-allocate cache with
//! runtime way gating.
//!
//! The cache stores no data, only tags: capsim workloads keep their real
//! data in host memory and mirror addresses through the hierarchy, so the
//! cache's job is purely to decide hit/miss/writeback and account for them.
//!
//! *Way gating* (`set_active_ways`) is the dynamic-cache-reconfiguration
//! mechanism the paper infers at low power caps: disabling ways reduces
//! array power at the cost of effective associativity/capacity. Gated ways
//! are flushed (dirty lines count as writebacks) and are ignored by lookup
//! until re-enabled.

use crate::config::CacheGeometry;
use crate::replacement::{SetState, XorShift64};

/// Whether an access is a read or a write (write-allocate either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Outcome of a single cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheResponse {
    /// True if the line was resident (in an *active* way).
    pub hit: bool,
    /// Line address of a dirty line evicted to make room, if any. The
    /// caller is responsible for charging the writeback to the next level.
    pub writeback: Option<u64>,
}

/// Per-set bookkeeping kept alongside the packed tag array: valid/dirty
/// way bitmasks and the replacement state.
#[derive(Clone, Debug)]
struct SetMeta {
    valid: u64,
    dirty: u64,
    repl: SetState,
}

/// One cache level. Addresses passed in are **line numbers** (physical
/// address / line size); the caller does the division once.
///
/// Tags are stored packed — one flat `sets × ways` array instead of a
/// `Vec` per set — so a lookup touches one contiguous slice (one cache
/// line for ≤8 ways) rather than chasing a per-set heap pointer, and the
/// tag/valid scan fuses into a single pass.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    /// `geom.ways`, hoisted: the row stride of `tags`.
    ways: u32,
    active_ways: u32,
    set_mask: u64,
    set_shift: u32,
    /// Packed tag array: way `w` of set `s` lives at `s * ways + w`.
    tags: Vec<u64>,
    meta: Vec<SetMeta>,
    rng: XorShift64,
    // statistics
    accesses: u64,
    misses: u64,
    writebacks: u64,
}

impl SetAssocCache {
    pub fn new(geom: CacheGeometry, seed: u64) -> Self {
        geom.validate();
        let n_sets = geom.sets();
        let meta = (0..n_sets)
            .map(|_| SetMeta { valid: 0, dirty: 0, repl: SetState::new(geom.policy, geom.ways) })
            .collect();
        SetAssocCache {
            geom,
            ways: geom.ways,
            active_ways: geom.ways,
            set_mask: n_sets - 1,
            set_shift: n_sets.trailing_zeros(),
            tags: vec![0; (n_sets * geom.ways as u64) as usize],
            meta,
            rng: XorShift64::new(seed),
            accesses: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The configured geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Ways currently enabled.
    pub fn active_ways(&self) -> u32 {
        self.active_ways
    }

    /// Hit latency in core cycles.
    pub fn hit_cycles(&self) -> u32 {
        self.geom.hit_cycles
    }

    #[inline]
    fn index(&self, line: u64) -> (usize, u64) {
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        (set, tag)
    }

    /// Bitmask with the low `active` bits set (active ways ≤ 64).
    #[inline]
    fn active_mask(active: u32) -> u64 {
        u64::MAX >> (64 - active)
    }

    /// Access `line`; fill on miss. Returns hit/miss and any dirty victim.
    #[inline]
    pub fn access(&mut self, line: u64, kind: AccessKind) -> CacheResponse {
        self.accesses += 1;
        let active = self.active_ways;
        let si = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let base = si * self.ways as usize;
        let tags = &mut self.tags[base..base + active as usize];
        let meta = &mut self.meta[si];
        // Fused tag/valid scan: one early-exit pass over the packed tag
        // row, walking the valid mask alongside instead of re-testing bit
        // `w` each turn.
        let mut valid = meta.valid;
        let mut hit_way = u32::MAX;
        for (w, &t) in tags.iter().enumerate() {
            if valid & 1 != 0 && t == tag {
                hit_way = w as u32;
                break;
            }
            valid >>= 1;
        }
        if hit_way != u32::MAX {
            meta.repl.touch(hit_way);
            if kind == AccessKind::Write {
                meta.dirty |= 1u64 << hit_way;
            }
            return CacheResponse { hit: true, writeback: None };
        }
        self.misses += 1;
        // Fill: prefer the lowest invalid active way, else the policy victim.
        let invalid = !meta.valid & Self::active_mask(active);
        let way = if invalid != 0 {
            invalid.trailing_zeros()
        } else {
            meta.repl.victim(active, &mut self.rng)
        };
        let bit = 1u64 << way;
        let mut writeback = None;
        if meta.valid & bit != 0 && meta.dirty & bit != 0 {
            let victim_line = (tags[way as usize] << self.set_shift) | si as u64;
            writeback = Some(victim_line);
            self.writebacks += 1;
        }
        tags[way as usize] = tag;
        meta.valid |= bit;
        if kind == AccessKind::Write {
            meta.dirty |= bit;
        } else {
            meta.dirty &= !bit;
        }
        meta.repl.touch(way);
        CacheResponse { hit: false, writeback }
    }

    /// Probe without filling or updating statistics/replacement. Used by
    /// tests and by the technique detector.
    pub fn probe(&self, line: u64) -> bool {
        let (si, tag) = self.index(line);
        let base = si * self.ways as usize;
        let tags = &self.tags[base..base + self.active_ways as usize];
        let mut valid = self.meta[si].valid;
        for &t in tags {
            if valid & 1 != 0 && t == tag {
                return true;
            }
            valid >>= 1;
        }
        false
    }

    /// Install a line without classifying the access (used by prefetchers).
    /// Returns a dirty victim line if one was evicted.
    pub fn fill(&mut self, line: u64) -> Option<u64> {
        if self.probe(line) {
            return None;
        }
        let active = self.active_ways;
        let (si, tag) = self.index(line);
        let base = si * self.ways as usize;
        let meta = &mut self.meta[si];
        let invalid = !meta.valid & Self::active_mask(active);
        let way = if invalid != 0 {
            invalid.trailing_zeros()
        } else {
            meta.repl.victim(active, &mut self.rng)
        };
        let bit = 1u64 << way;
        let mut writeback = None;
        let slot = &mut self.tags[base + way as usize];
        if meta.valid & bit != 0 && meta.dirty & bit != 0 {
            writeback = Some((*slot << self.set_shift) | si as u64);
            self.writebacks += 1;
        }
        *slot = tag;
        meta.valid |= bit;
        meta.dirty &= !bit;
        meta.repl.touch(way);
        writeback
    }

    /// Gate or un-gate ways. Shrinking flushes the disabled ways: their
    /// valid bits are cleared and dirty lines are counted as writebacks.
    /// Returns the number of dirty lines flushed.
    pub fn set_active_ways(&mut self, ways: u32) -> u64 {
        let ways = ways.clamp(1, self.geom.ways);
        let mut flushed = 0;
        if ways < self.active_ways {
            // Bits [ways, active_ways) are the gated-off ways of every set.
            let gated = Self::active_mask(self.active_ways) & !Self::active_mask(ways);
            for meta in &mut self.meta {
                let dirty_gated = (meta.valid & meta.dirty & gated).count_ones() as u64;
                flushed += dirty_gated;
                self.writebacks += dirty_gated;
                meta.valid &= !gated;
                meta.dirty &= !gated;
            }
        }
        self.active_ways = ways;
        flushed
    }

    /// Invalidate everything (e.g. on machine reset).
    pub fn flush_all(&mut self) {
        for meta in &mut self.meta {
            meta.valid = 0;
            meta.dirty = 0;
        }
    }

    /// (accesses, misses, writebacks) since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.accesses, self.misses, self.writebacks)
    }

    /// Effective capacity in bytes given current way gating.
    pub fn effective_bytes(&self) -> u64 {
        self.geom.sets() * self.geom.line_bytes * self.active_ways as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use crate::replacement::ReplacementPolicy;

    fn small(ways: u32, policy: ReplacementPolicy) -> SetAssocCache {
        let geom = CacheGeometry {
            size_bytes: 64 * ways as u64 * 4, // 4 sets
            line_bytes: 64,
            ways,
            hit_cycles: 4,
            policy,
        };
        SetAssocCache::new(geom, 99)
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = small(4, ReplacementPolicy::Lru);
        assert!(!c.access(10, AccessKind::Read).hit);
        assert!(c.access(10, AccessKind::Read).hit);
        assert_eq!(c.stats(), (2, 1, 0));
    }

    #[test]
    fn capacity_eviction_follows_lru() {
        let mut c = small(2, ReplacementPolicy::Lru);
        // Lines mapping to set 0: multiples of 4.
        c.access(0, AccessKind::Read);
        c.access(4, AccessKind::Read);
        c.access(8, AccessKind::Read); // evicts line 0
        assert!(!c.probe(0));
        assert!(c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback_of_correct_line() {
        let mut c = small(1, ReplacementPolicy::Lru);
        c.access(0, AccessKind::Write);
        let r = c.access(4, AccessKind::Read); // conflicts in set 0
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small(1, ReplacementPolicy::Lru);
        c.access(0, AccessKind::Read);
        let r = c.access(4, AccessKind::Read);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn way_gating_halves_effective_capacity_and_flushes() {
        let mut c = small(4, ReplacementPolicy::Lru);
        for l in [0u64, 4, 8, 12] {
            c.access(l, AccessKind::Write); // fill 4 ways of set 0, dirty
        }
        let flushed = c.set_active_ways(2);
        assert_eq!(flushed, 2, "two dirty ways gated off in set 0");
        assert_eq!(c.effective_bytes(), c.geometry().sets() * 64 * 2);
        // Only 2 lines can now live in set 0.
        c.flush_all();
        c.access(0, AccessKind::Read);
        c.access(4, AccessKind::Read);
        c.access(8, AccessKind::Read);
        assert!(!c.probe(0), "gated set holds only 2 lines");
    }

    #[test]
    fn gated_cache_still_functions_with_one_way() {
        let mut c = small(8, ReplacementPolicy::TreePlru);
        c.set_active_ways(1);
        assert!(!c.access(3, AccessKind::Read).hit);
        assert!(c.access(3, AccessKind::Read).hit);
        assert!(!c.access(7, AccessKind::Read).hit);
        assert!(!c.access(3, AccessKind::Read).hit, "direct-mapped conflict");
    }

    #[test]
    fn ungating_restores_associativity_without_resurrecting_lines() {
        let mut c = small(4, ReplacementPolicy::Lru);
        c.access(0, AccessKind::Read); // fills way 0
        c.access(4, AccessKind::Read); // fills way 1 (same set)
        c.set_active_ways(1); // way 1 flushed, way 0 survives
        c.set_active_ways(4);
        assert!(c.probe(0), "line in a surviving way remains");
        assert!(!c.probe(4), "flushed lines stay flushed after ungating");
    }

    #[test]
    fn prefetch_fill_does_not_count_as_demand_access() {
        let mut c = small(4, ReplacementPolicy::Lru);
        c.fill(5);
        assert_eq!(c.stats().0, 0);
        assert!(c.access(5, AccessKind::Read).hit);
    }

    #[test]
    fn streaming_through_e5_l3_misses_every_new_line() {
        // A working set far larger than the cache produces ~100% misses:
        // the regime that makes SIRE/RSM insensitive to way gating.
        let geom = HierarchyConfig::e5_2680().l3;
        let mut c = SetAssocCache::new(geom, 1);
        let lines = (geom.size_bytes / 64) * 4;
        let mut misses = 0;
        for l in 0..lines {
            if !c.access(l, AccessKind::Read).hit {
                misses += 1;
            }
        }
        assert_eq!(misses, lines);
        // Second sweep of a >4x working set still misses everything (LRU).
        let (_, m0, _) = c.stats();
        for l in 0..lines {
            c.access(l, AccessKind::Read);
        }
        let (_, m1, _) = c.stats();
        assert_eq!(m1 - m0, lines);
    }

    #[test]
    fn cache_resident_set_hits_after_warmup_then_suffers_under_gating() {
        let geom = HierarchyConfig::e5_2680().l2; // 256 KiB, 8-way
        let mut c = SetAssocCache::new(geom, 1);
        let lines = geom.size_bytes / 64 / 2; // half capacity
        for l in 0..lines {
            c.access(l, AccessKind::Read);
        }
        let (_, m_warm, _) = c.stats();
        for l in 0..lines {
            assert!(c.access(l, AccessKind::Read).hit);
        }
        assert_eq!(c.stats().1, m_warm, "no misses while resident");
        // Gate to 2 ways: capacity below working set -> misses return.
        c.set_active_ways(2);
        let mut miss = 0u64;
        for _ in 0..3 {
            for l in 0..lines {
                if !c.access(l, AccessKind::Read).hit {
                    miss += 1;
                }
            }
        }
        assert!(miss > lines, "gating reintroduces capacity misses");
    }
}
