//! The assembled memory hierarchy: per-core L1I/L1D/L2 + TLBs, a shared
//! L3, the page walker and DRAM.
//!
//! Latency is returned split into **core cycles** (cache levels, clocked
//! with the core and therefore scaled by DVFS) and **nanoseconds** (DRAM,
//! which does not scale). The CPU model combines the two with the current
//! frequency and a memory-level-parallelism overlap factor.
//!
//! Writebacks ripple: a dirty L1 victim is written into L2; a dirty L2
//! victim into L3; a dirty L3 victim to DRAM. Writeback traffic is counted
//! in [`MemStats::writebacks`]/[`MemStats::dram_writes`] but is not charged
//! to the demand access's latency (real write buffers hide it).

use crate::addr::{VAddr, LINE_BYTES};
use crate::cache::{AccessKind, SetAssocCache};
use crate::config::HierarchyConfig;
use crate::dram::DramModel;
use crate::paging::PageTable;
use crate::prefetch::NextLinePrefetcher;
use crate::reconfig::MemReconfig;
use crate::stats::MemStats;
use crate::tlb::Tlb;

/// Index of a core within the machine.
pub type CoreId = usize;

/// Latency and event summary of one access.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AccessOutcome {
    /// Core-clock cycles spent in the cache levels (scale with DVFS).
    pub cycles: u64,
    /// Fixed nanoseconds spent in DRAM (do not scale with DVFS).
    pub ns: f64,
    /// Demand miss flags for quick classification by the caller.
    pub l1_miss: bool,
    pub l2_miss: bool,
    pub l3_miss: bool,
    pub tlb_miss: bool,
}

#[derive(Clone, Debug)]
struct CorePrivate {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    itlb: Tlb,
    dtlb: Tlb,
    /// Optional unified second-level TLB backing both L1 TLBs.
    stlb: Option<Tlb>,
    prefetcher: NextLinePrefetcher,
    stats: MemStats,
}

/// The full hierarchy shared by all cores of a machine.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    cores: Vec<CorePrivate>,
    l3: SetAssocCache,
    dram: DramModel,
    pt: PageTable,
    current: MemReconfig,
}

impl MemoryHierarchy {
    /// Build a hierarchy with `n_cores` private slices. `salt`
    /// disambiguates the address space of this machine.
    pub fn new(cfg: HierarchyConfig, n_cores: usize, salt: u64) -> Self {
        cfg.validate();
        assert!(n_cores >= 1);
        let cores = (0..n_cores)
            .map(|i| CorePrivate {
                l1i: SetAssocCache::new(cfg.l1i, cfg.seed ^ (i as u64) << 1),
                l1d: SetAssocCache::new(cfg.l1d, cfg.seed ^ (i as u64) << 2),
                l2: SetAssocCache::new(cfg.l2, cfg.seed ^ (i as u64) << 3),
                itlb: Tlb::new(cfg.itlb, cfg.seed ^ (i as u64) << 4),
                dtlb: Tlb::new(cfg.dtlb, cfg.seed ^ (i as u64) << 5),
                stlb: cfg.stlb.map(|g| Tlb::new(g, cfg.seed ^ (i as u64) << 6)),
                prefetcher: NextLinePrefetcher::new(cfg.l2_prefetch),
                stats: MemStats::default(),
            })
            .collect();
        let mut full = MemReconfig::full();
        full.l1d_ways = cfg.l1d.ways;
        full.l1i_ways = cfg.l1i.ways;
        full.l2_ways = cfg.l2.ways;
        full.l3_ways = cfg.l3.ways;
        full.itlb_entries = cfg.itlb.entries;
        full.dtlb_entries = cfg.dtlb.entries;
        MemoryHierarchy {
            cores,
            l3: SetAssocCache::new(cfg.l3, cfg.seed ^ 0xf00d),
            dram: DramModel::new(cfg.dram_ns),
            pt: PageTable::new(salt),
            current: full,
            cfg,
        }
    }

    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// The configuration currently applied.
    pub fn current_reconfig(&self) -> MemReconfig {
        self.current
    }

    /// Event counters of one core (shared L3/DRAM events are attributed to
    /// the core that triggered them).
    pub fn stats(&self, core: CoreId) -> MemStats {
        self.cores[core].stats
    }

    /// Sum of all cores' counters.
    pub fn total_stats(&self) -> MemStats {
        let mut t = MemStats::default();
        for c in &self.cores {
            let s = c.stats;
            t.l1d_accesses += s.l1d_accesses;
            t.l1d_misses += s.l1d_misses;
            t.l1i_accesses += s.l1i_accesses;
            t.l1i_misses += s.l1i_misses;
            t.l2_accesses += s.l2_accesses;
            t.l2_misses += s.l2_misses;
            t.l3_accesses += s.l3_accesses;
            t.l3_misses += s.l3_misses;
            t.dtlb_lookups += s.dtlb_lookups;
            t.dtlb_misses += s.dtlb_misses;
            t.itlb_lookups += s.itlb_lookups;
            t.itlb_misses += s.itlb_misses;
            t.stlb_lookups += s.stlb_lookups;
            t.stlb_misses += s.stlb_misses;
            t.walk_reads += s.walk_reads;
            t.dram_reads += s.dram_reads;
            t.dram_writes += s.dram_writes;
            t.writebacks += s.writebacks;
            t.prefetches += s.prefetches;
        }
        t
    }

    /// Apply a memory-side reconfiguration (from the BMC capping ladder).
    pub fn apply(&mut self, r: MemReconfig) {
        for c in &mut self.cores {
            c.l1d.set_active_ways(r.l1d_ways);
            c.l1i.set_active_ways(r.l1i_ways);
            c.l2.set_active_ways(r.l2_ways);
            c.itlb.set_active_entries(r.itlb_entries);
            c.dtlb.set_active_entries(r.dtlb_entries);
        }
        self.l3.set_active_ways(r.l3_ways);
        self.dram.set_gate(r.mem_gate);
        self.current = MemReconfig {
            l1d_ways: self.cores[0].l1d.active_ways(),
            l1i_ways: self.cores[0].l1i.active_ways(),
            l2_ways: self.cores[0].l2.active_ways(),
            l3_ways: self.l3.active_ways(),
            itlb_entries: self.cores[0].itlb.active_entries(),
            dtlb_entries: self.cores[0].dtlb.active_entries(),
            mem_gate: self.dram.gate(),
        };
    }

    /// A data load or store at `vaddr` from `core`.
    pub fn data_access(&mut self, core: CoreId, vaddr: VAddr, write: bool) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        let vpn = vaddr.vpn();
        // DTLB.
        self.cores[core].stats.dtlb_lookups += 1;
        let hit = self.cores[core].dtlb.lookup(vpn).is_some();
        if !hit {
            self.cores[core].stats.dtlb_misses += 1;
            out.tlb_miss = true;
            let ppn = self.second_level_translate(core, vpn, &mut out);
            self.cores[core].dtlb.insert(vpn, ppn);
        }
        let paddr = self.pt.translate(vaddr);
        let line = paddr.line();
        let kind = if write { AccessKind::Write } else { AccessKind::Read };

        self.cores[core].stats.l1d_accesses += 1;
        out.cycles += self.cfg.l1d.hit_cycles as u64;
        let r1 = self.cores[core].l1d.access(line, kind);
        if r1.hit {
            return out;
        }
        self.cores[core].stats.l1d_misses += 1;
        out.l1_miss = true;
        if let Some(victim) = r1.writeback {
            self.writeback_to_l2(core, victim);
        }
        self.l2_demand(core, line, &mut out);
        out
    }

    /// An instruction-fetch access for the line containing `vaddr`.
    pub fn fetch_access(&mut self, core: CoreId, vaddr: VAddr) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        let vpn = vaddr.vpn();
        self.cores[core].stats.itlb_lookups += 1;
        let hit = self.cores[core].itlb.lookup(vpn).is_some();
        if !hit {
            self.cores[core].stats.itlb_misses += 1;
            out.tlb_miss = true;
            let ppn = self.second_level_translate(core, vpn, &mut out);
            self.cores[core].itlb.insert(vpn, ppn);
        }
        let paddr = self.pt.translate(vaddr);
        let line = paddr.line();
        self.cores[core].stats.l1i_accesses += 1;
        out.cycles += self.cfg.l1i.hit_cycles as u64;
        let r1 = self.cores[core].l1i.access(line, AccessKind::Read);
        if r1.hit {
            return out;
        }
        self.cores[core].stats.l1i_misses += 1;
        out.l1_miss = true;
        // L1I is read-only: no writeback possible.
        self.l2_demand(core, line, &mut out);
        out
    }

    /// Resolve a first-level TLB miss: consult the STLB if configured,
    /// walking the page table only on an STLB miss. Returns the PPN.
    fn second_level_translate(
        &mut self,
        core: CoreId,
        vpn: u64,
        out: &mut AccessOutcome,
    ) -> u64 {
        if self.cores[core].stlb.is_some() {
            self.cores[core].stats.stlb_lookups += 1;
            out.cycles += self.cfg.stlb_hit_cycles as u64;
            let hit = self.cores[core]
                .stlb
                .as_mut()
                .expect("checked above")
                .lookup(vpn);
            if let Some(ppn) = hit {
                return ppn;
            }
            self.cores[core].stats.stlb_misses += 1;
        }
        self.page_walk(core, vpn, out);
        let p = self.pt.translate(VAddr(vpn << crate::addr::PAGE_BITS));
        if let Some(stlb) = &mut self.cores[core].stlb {
            stlb.insert(vpn, p.ppn());
        }
        p.ppn()
    }

    /// L2 demand access shared by data, fetch and walker paths.
    fn l2_demand(&mut self, core: CoreId, line: u64, out: &mut AccessOutcome) {
        self.cores[core].stats.l2_accesses += 1;
        out.cycles += self.cfg.l2.hit_cycles as u64;
        let r2 = self.cores[core].l2.access(line, AccessKind::Read);
        if r2.hit {
            return;
        }
        self.cores[core].stats.l2_misses += 1;
        out.l2_miss = true;
        if let Some(victim) = r2.writeback {
            self.writeback_to_l3(core, victim);
        }
        // Train the prefetcher; a prefetch fill pulls the next line into L2
        // through L3/DRAM without charging demand latency.
        if let Some(pf_line) = self.cores[core].prefetcher.on_miss(line) {
            self.cores[core].stats.prefetches += 1;
            self.prefetch_fill(core, pf_line);
        }
        // L3.
        self.cores[core].stats.l3_accesses += 1;
        out.cycles += self.cfg.l3.hit_cycles as u64;
        let r3 = self.l3.access(line, AccessKind::Read);
        if r3.hit {
            return;
        }
        self.cores[core].stats.l3_misses += 1;
        out.l3_miss = true;
        if let Some(victim) = r3.writeback {
            self.cores[core].stats.dram_writes += 1;
            self.dram.access(victim, true);
        }
        out.ns += self.dram.access(line, false);
        self.cores[core].stats.dram_reads += 1;
    }

    /// Dirty line leaving an L1D: write into L2 (and ripple further).
    fn writeback_to_l2(&mut self, core: CoreId, line: u64) {
        self.cores[core].stats.writebacks += 1;
        let r = self.cores[core].l2.access(line, AccessKind::Write);
        if let Some(victim) = r.writeback {
            self.writeback_to_l3(core, victim);
        }
    }

    /// Dirty line leaving an L2: write into L3 (and ripple to DRAM).
    fn writeback_to_l3(&mut self, core: CoreId, line: u64) {
        self.cores[core].stats.writebacks += 1;
        let r = self.l3.access(line, AccessKind::Write);
        if let Some(victim) = r.writeback {
            self.cores[core].stats.dram_writes += 1;
            self.dram.access(victim, true);
        }
    }

    /// Install a prefetched line into L2, fetching it from L3/DRAM.
    fn prefetch_fill(&mut self, core: CoreId, line: u64) {
        if !self.l3.probe(line) {
            // Pull into L3 from DRAM first (prefetch counts as DRAM read).
            if let Some(victim) = self.l3.fill(line) {
                self.cores[core].stats.dram_writes += 1;
                self.dram.access(victim, true);
            }
            self.cores[core].stats.dram_reads += 1;
            self.dram.access(line, false);
        }
        if let Some(victim) = self.cores[core].l2.fill(line) {
            self.writeback_to_l3(core, victim);
        }
    }

    /// Charge a hardware page walk: `walk_levels` physical reads through
    /// L2 → L3 → DRAM.
    ///
    /// Walker references are charged for latency and counted in
    /// [`MemStats::walk_reads`]/[`MemStats::dram_reads`], but NOT in the
    /// L2/L3 demand-miss counters: the paper's PAPI presets
    /// (`PAPI_L2_TCM`/`PAPI_L3_TCM`) count demand traffic, and folding
    /// walker refs in would fabricate the L2/L3 blow-up that Table II
    /// explicitly does *not* show for SIRE/RSM at low caps.
    fn page_walk(&mut self, core: CoreId, vpn: u64, out: &mut AccessOutcome) {
        let addrs = self.pt.walk_addrs(vpn, self.cfg.walk_levels);
        for pa in addrs {
            let line = pa.line();
            self.cores[core].stats.walk_reads += 1;
            // Walker reads skip L1 and go straight to L2.
            out.cycles += self.cfg.l2.hit_cycles as u64;
            let r2 = self.cores[core].l2.access(line, AccessKind::Read);
            if r2.hit {
                continue;
            }
            if let Some(victim) = r2.writeback {
                self.writeback_to_l3(core, victim);
            }
            out.cycles += self.cfg.l3.hit_cycles as u64;
            let r3 = self.l3.access(line, AccessKind::Read);
            if r3.hit {
                continue;
            }
            if let Some(victim) = r3.writeback {
                self.cores[core].stats.dram_writes += 1;
                self.dram.access(victim, true);
            }
            out.ns += self.dram.access(line, false);
            self.cores[core].stats.dram_reads += 1;
        }
    }

    /// Touch a whole virtual range for warm-up (one read per line).
    pub fn warm_range(&mut self, core: CoreId, base: VAddr, bytes: u64) {
        let mut off = 0;
        while off < bytes {
            self.data_access(core, base.add(off), false);
            off += LINE_BYTES;
        }
    }

    /// Flush all caches and TLBs (machine reset between runs).
    pub fn flush_all(&mut self) {
        for c in &mut self.cores {
            c.l1i.flush_all();
            c.l1d.flush_all();
            c.l2.flush_all();
            c.itlb.flush();
            c.dtlb.flush();
            if let Some(stlb) = &mut c.stlb {
                stlb.flush();
            }
        }
        self.l3.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::tiny(), 1, 0xabc)
    }

    #[test]
    fn cold_access_traverses_all_levels() {
        let mut m = h();
        let out = m.data_access(0, VAddr(0x10_0000), false);
        assert!(out.l1_miss && out.l2_miss && out.l3_miss && out.tlb_miss);
        assert!(out.ns > 0.0, "DRAM charged");
        let s = m.stats(0);
        assert_eq!(s.l1d_accesses, 1);
        assert_eq!(s.l1d_misses, 1);
        assert_eq!(s.dtlb_misses, 1);
        assert_eq!(s.walk_reads, 4);
        assert!(s.dram_reads >= 1);
    }

    #[test]
    fn warm_access_hits_l1_with_no_dram_time() {
        let mut m = h();
        m.data_access(0, VAddr(0x10_0000), false);
        let out = m.data_access(0, VAddr(0x10_0000), false);
        assert!(!out.l1_miss && !out.tlb_miss);
        assert_eq!(out.ns, 0.0);
        assert_eq!(out.cycles, m.config().l1d.hit_cycles as u64);
    }

    #[test]
    fn same_page_reuses_tlb_entry() {
        let mut m = h();
        m.data_access(0, VAddr(0x20_0000), false);
        let before = m.stats(0).dtlb_misses;
        m.data_access(0, VAddr(0x20_0040), false);
        assert_eq!(m.stats(0).dtlb_misses, before);
    }

    #[test]
    fn fetch_path_uses_itlb_and_l1i() {
        let mut m = h();
        let out = m.fetch_access(0, VAddr(0x40_0000));
        assert!(out.l1_miss);
        let s = m.stats(0);
        assert_eq!(s.itlb_misses, 1);
        assert_eq!(s.l1i_misses, 1);
        assert_eq!(s.l1d_accesses, 0, "fetch does not touch L1D");
    }

    #[test]
    fn dirty_data_eventually_reaches_dram_as_writes() {
        let mut m = h();
        // Write a region far larger than L3 so dirty lines ripple out.
        let span = m.config().l3.size_bytes * 4;
        let mut off = 0;
        while off < span {
            m.data_access(0, VAddr(0x100_0000 + off), true);
            off += 64;
        }
        // Stream a second disjoint region to force evictions of the dirty set.
        let mut off = 0;
        while off < span {
            m.data_access(0, VAddr(0x9000_0000 + off), false);
            off += 64;
        }
        assert!(m.stats(0).dram_writes > 0, "dirty evictions become DRAM writes");
        assert!(m.stats(0).writebacks > 0);
    }

    #[test]
    fn reconfig_roundtrip_reports_applied_state() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::e5_2680(), 1, 1);
        let mut r = MemReconfig::full();
        r.l3_ways = 10;
        r.itlb_entries = 32;
        r.mem_gate = crate::dram::MemGateLevel::Heavy;
        m.apply(r);
        let cur = m.current_reconfig();
        assert_eq!(cur.l3_ways, 10);
        assert_eq!(cur.itlb_entries, 32);
        assert_eq!(cur.mem_gate, crate::dram::MemGateLevel::Heavy);
    }

    #[test]
    fn severe_mem_gate_slows_dram_bound_access() {
        let mut m = h();
        // Warm the page's translation so both measurements are pure data
        // DRAM accesses (no walker refs mixed in).
        m.data_access(0, VAddr(0x55_0000), false);
        let cold = m.data_access(0, VAddr(0x55_0000 + 256), false).ns;
        let mut r = m.current_reconfig();
        r.mem_gate = crate::dram::MemGateLevel::Severe;
        m.apply(r);
        let cold2 = m.data_access(0, VAddr(0x55_0000 + 512), false).ns;
        assert!(cold2 > cold * 8.0, "{cold2} vs {cold}");
    }

    #[test]
    fn cores_have_private_l1_but_share_l3() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::tiny(), 2, 5);
        m.data_access(0, VAddr(0x70_0000), false);
        // Core 1 misses its private L1/L2 but hits the shared L3.
        let out = m.data_access(1, VAddr(0x70_0000), false);
        assert!(out.l1_miss && out.l2_miss);
        assert!(!out.l3_miss, "L3 shared across cores");
    }

    #[test]
    fn prefetcher_reduces_demand_l2_misses_for_streams() {
        let cfg = HierarchyConfig::e5_2680();
        let mut with = MemoryHierarchy::new(cfg, 1, 9);
        let mut without = {
            let mut c = cfg;
            c.l2_prefetch = false;
            MemoryHierarchy::new(c, 1, 9)
        };
        let n = 4096u64;
        for i in 0..n {
            with.data_access(0, VAddr(0x800_0000 + i * 64), false);
            without.data_access(0, VAddr(0x800_0000 + i * 64), false);
        }
        assert!(with.stats(0).prefetches > 0);
        assert!(
            with.stats(0).l2_misses < without.stats(0).l2_misses,
            "{} vs {}",
            with.stats(0).l2_misses,
            without.stats(0).l2_misses
        );
    }

    #[test]
    fn stlb_absorbs_first_level_tlb_misses() {
        // 32 pages cycled: thrashes the tiny 8-entry DTLB, fits a 64-entry
        // STLB — walks happen once per page, not once per DTLB miss.
        let mk = |stlb: bool| {
            let mut cfg = HierarchyConfig::tiny();
            if stlb {
                cfg.stlb = Some(crate::config::TlbGeometry {
                    entries: 64,
                    ways: 4,
                    policy: crate::replacement::ReplacementPolicy::Lru,
                });
            }
            let mut m = MemoryHierarchy::new(cfg, 1, 33);
            for round in 0..10u64 {
                for page in 0..32u64 {
                    m.data_access(0, VAddr(0x100_0000 + page * 4096 + round * 64), false);
                }
            }
            m.stats(0)
        };
        let without = mk(false);
        let with = mk(true);
        // Same first-level miss pressure either way…
        assert!(with.dtlb_misses > 100, "DTLB thrashes: {}", with.dtlb_misses);
        // …but the STLB absorbs nearly all the walks.
        assert!(with.stlb_lookups > 0 && without.stlb_lookups == 0);
        assert!(
            with.walk_reads < without.walk_reads / 4,
            "walks {} vs {}",
            with.walk_reads,
            without.walk_reads
        );
    }

    #[test]
    fn stlb_hit_is_cheaper_than_a_walk() {
        let cfg = HierarchyConfig::tiny().with_stlb();
        let mut m = MemoryHierarchy::new(cfg, 1, 34);
        // Prime page A, then evict it from the 8-entry DTLB (not the STLB).
        m.data_access(0, VAddr(0x200_0000), false);
        for page in 1..=16u64 {
            m.data_access(0, VAddr(0x200_0000 + page * 4096), false);
        }
        let walks_before = m.stats(0).walk_reads;
        let out = m.data_access(0, VAddr(0x200_0000 + 64), false);
        assert!(out.tlb_miss, "DTLB evicted the entry");
        assert_eq!(m.stats(0).walk_reads, walks_before, "STLB hit avoided the walk");
    }

    #[test]
    fn flush_all_restores_cold_state() {
        let mut m = h();
        m.data_access(0, VAddr(0x30_0000), false);
        m.flush_all();
        let out = m.data_access(0, VAddr(0x30_0000), false);
        assert!(out.l1_miss && out.tlb_miss);
    }
}
