//! The assembled memory hierarchy: per-core L1I/L1D/L2 + TLBs, a shared
//! L3, the page walker and DRAM.
//!
//! Latency is returned split into **core cycles** (cache levels, clocked
//! with the core and therefore scaled by DVFS) and **nanoseconds** (DRAM,
//! which does not scale). The CPU model combines the two with the current
//! frequency and a memory-level-parallelism overlap factor.
//!
//! Writebacks ripple: a dirty L1 victim is written into L2; a dirty L2
//! victim into L3; a dirty L3 victim to DRAM. Writeback traffic is counted
//! in [`MemStats::writebacks`]/[`MemStats::dram_writes`] but is not charged
//! to the demand access's latency (real write buffers hide it).

use crate::addr::{PAddr, VAddr, LINE_BYTES};
use crate::cache::{AccessKind, SetAssocCache};
use crate::config::HierarchyConfig;
use crate::dram::DramModel;
use crate::paging::PageTable;
use crate::prefetch::NextLinePrefetcher;
use crate::reconfig::MemReconfig;
use crate::stats::MemStats;
use crate::tlb::Tlb;

/// Index of a core within the machine.
pub type CoreId = usize;

/// Latency and event summary of one access.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AccessOutcome {
    /// Core-clock cycles spent in the cache levels (scale with DVFS).
    pub cycles: u64,
    /// Fixed nanoseconds spent in DRAM (do not scale with DVFS).
    pub ns: f64,
    /// Demand miss flags for quick classification by the caller.
    pub l1_miss: bool,
    pub l2_miss: bool,
    pub l3_miss: bool,
    pub tlb_miss: bool,
    /// The physical address the access resolved to — on TLB hits this is
    /// the TLB-cached PPN, so callers (and property tests) can check the
    /// fast path against an independent [`crate::PageTable`].
    pub paddr: PAddr,
}

/// Sentinel for the last-page memos: no VPN can equal `u64::MAX` (VPNs are
/// at most 52 bits), so this entry never matches.
const NO_PAGE: (u64, u64) = (u64::MAX, 0);

#[derive(Clone, Debug)]
struct CorePrivate {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    itlb: Tlb,
    dtlb: Tlb,
    /// Optional unified second-level TLB backing both L1 TLBs.
    stlb: Option<Tlb>,
    /// One-entry VPN→PPN memos in front of the D/I TLBs. Consecutive
    /// accesses to the same page skip the set-associative lookup; the
    /// skipped `touch` is a no-op because that entry is already MRU.
    /// Invalidated whenever TLB contents can change underneath them
    /// ([`MemoryHierarchy::apply`], [`MemoryHierarchy::flush_all`]).
    last_data_page: (u64, u64),
    last_fetch_page: (u64, u64),
    prefetcher: NextLinePrefetcher,
    stats: MemStats,
}

/// The full hierarchy shared by all cores of a machine.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    cores: Vec<CorePrivate>,
    l3: SetAssocCache,
    dram: DramModel,
    pt: PageTable,
    current: MemReconfig,
}

impl MemoryHierarchy {
    /// Build a hierarchy with `n_cores` private slices. `salt`
    /// disambiguates the address space of this machine.
    pub fn new(cfg: HierarchyConfig, n_cores: usize, salt: u64) -> Self {
        cfg.validate();
        assert!(n_cores >= 1);
        let cores = (0..n_cores)
            .map(|i| CorePrivate {
                l1i: SetAssocCache::new(cfg.l1i, cfg.seed ^ (i as u64) << 1),
                l1d: SetAssocCache::new(cfg.l1d, cfg.seed ^ (i as u64) << 2),
                l2: SetAssocCache::new(cfg.l2, cfg.seed ^ (i as u64) << 3),
                itlb: Tlb::new(cfg.itlb, cfg.seed ^ (i as u64) << 4),
                dtlb: Tlb::new(cfg.dtlb, cfg.seed ^ (i as u64) << 5),
                stlb: cfg.stlb.map(|g| Tlb::new(g, cfg.seed ^ (i as u64) << 6)),
                last_data_page: NO_PAGE,
                last_fetch_page: NO_PAGE,
                prefetcher: NextLinePrefetcher::new(cfg.l2_prefetch),
                stats: MemStats::default(),
            })
            .collect();
        let mut full = MemReconfig::full();
        full.l1d_ways = cfg.l1d.ways;
        full.l1i_ways = cfg.l1i.ways;
        full.l2_ways = cfg.l2.ways;
        full.l3_ways = cfg.l3.ways;
        full.itlb_entries = cfg.itlb.entries;
        full.dtlb_entries = cfg.dtlb.entries;
        MemoryHierarchy {
            cores,
            l3: SetAssocCache::new(cfg.l3, cfg.seed ^ 0xf00d),
            dram: DramModel::new(cfg.dram_ns),
            pt: PageTable::new(salt),
            current: full,
            cfg,
        }
    }

    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// The configuration currently applied.
    pub fn current_reconfig(&self) -> MemReconfig {
        self.current
    }

    /// Event counters of one core (shared L3/DRAM events are attributed to
    /// the core that triggered them).
    pub fn stats(&self, core: CoreId) -> MemStats {
        self.cores[core].stats
    }

    /// Sum of all cores' counters.
    pub fn total_stats(&self) -> MemStats {
        let mut t = MemStats::default();
        for c in &self.cores {
            let s = c.stats;
            t.l1d_accesses += s.l1d_accesses;
            t.l1d_misses += s.l1d_misses;
            t.l1i_accesses += s.l1i_accesses;
            t.l1i_misses += s.l1i_misses;
            t.l2_accesses += s.l2_accesses;
            t.l2_misses += s.l2_misses;
            t.l3_accesses += s.l3_accesses;
            t.l3_misses += s.l3_misses;
            t.dtlb_lookups += s.dtlb_lookups;
            t.dtlb_misses += s.dtlb_misses;
            t.itlb_lookups += s.itlb_lookups;
            t.itlb_misses += s.itlb_misses;
            t.stlb_lookups += s.stlb_lookups;
            t.stlb_misses += s.stlb_misses;
            t.walk_reads += s.walk_reads;
            t.dram_reads += s.dram_reads;
            t.dram_writes += s.dram_writes;
            t.writebacks += s.writebacks;
            t.prefetches += s.prefetches;
        }
        t
    }

    /// Apply a memory-side reconfiguration (from the BMC capping ladder).
    pub fn apply(&mut self, r: MemReconfig) {
        for c in &mut self.cores {
            c.l1d.set_active_ways(r.l1d_ways);
            c.l1i.set_active_ways(r.l1i_ways);
            c.l2.set_active_ways(r.l2_ways);
            c.itlb.set_active_entries(r.itlb_entries);
            c.dtlb.set_active_entries(r.dtlb_entries);
            // Entry gating may have evicted the memoized translations.
            c.last_data_page = NO_PAGE;
            c.last_fetch_page = NO_PAGE;
        }
        self.l3.set_active_ways(r.l3_ways);
        self.dram.set_gate(r.mem_gate);
        self.current = MemReconfig {
            l1d_ways: self.cores[0].l1d.active_ways(),
            l1i_ways: self.cores[0].l1i.active_ways(),
            l2_ways: self.cores[0].l2.active_ways(),
            l3_ways: self.l3.active_ways(),
            itlb_entries: self.cores[0].itlb.active_entries(),
            dtlb_entries: self.cores[0].dtlb.active_entries(),
            mem_gate: self.dram.gate(),
        };
    }

    /// A data load or store at `vaddr` from `core`.
    ///
    /// Translation is resolved from the TLBs on the hit path (the PPN a TLB
    /// caches is the one [`PageTable::translate`] produced when the entry
    /// was filled); the page table's map is consulted only on walks. A
    /// debug assertion cross-checks the cached PPN against the page table
    /// on every access.
    pub fn data_access(&mut self, core: CoreId, vaddr: VAddr, write: bool) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        let vpn = vaddr.vpn();
        // DTLB, fronted by the one-entry last-page memo.
        self.cores[core].stats.dtlb_lookups += 1;
        let ppn = if self.cores[core].last_data_page.0 == vpn {
            self.cores[core].last_data_page.1
        } else if let Some(ppn) = self.cores[core].dtlb.lookup(vpn) {
            self.cores[core].last_data_page = (vpn, ppn);
            ppn
        } else {
            self.cores[core].stats.dtlb_misses += 1;
            out.tlb_miss = true;
            let ppn = self.second_level_translate(core, vpn, &mut out);
            self.cores[core].dtlb.insert(vpn, ppn);
            self.cores[core].last_data_page = (vpn, ppn);
            ppn
        };
        debug_assert_eq!(
            crate::addr::compose(ppn, vaddr.page_offset()),
            self.pt.translate(vaddr),
            "TLB-cached translation diverged from the page table for {vaddr:?}"
        );
        out.paddr = crate::addr::compose(ppn, vaddr.page_offset());
        let line = out.paddr.line();
        let kind = if write { AccessKind::Write } else { AccessKind::Read };

        // One bounds-checked core lookup for the whole cache descent; the
        // helpers below work on split field borrows.
        let c = &mut self.cores[core];
        c.stats.l1d_accesses += 1;
        out.cycles += self.cfg.l1d.hit_cycles as u64;
        let r1 = c.l1d.access(line, kind);
        if r1.hit {
            return out;
        }
        c.stats.l1d_misses += 1;
        out.l1_miss = true;
        if let Some(victim) = r1.writeback {
            Self::writeback_to_l2(&self.cfg, c, &mut self.l3, &mut self.dram, victim);
        }
        Self::l2_demand(&self.cfg, c, &mut self.l3, &mut self.dram, line, &mut out);
        out
    }

    /// An instruction-fetch access for the line containing `vaddr`.
    pub fn fetch_access(&mut self, core: CoreId, vaddr: VAddr) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        let vpn = vaddr.vpn();
        self.cores[core].stats.itlb_lookups += 1;
        let ppn = if self.cores[core].last_fetch_page.0 == vpn {
            self.cores[core].last_fetch_page.1
        } else if let Some(ppn) = self.cores[core].itlb.lookup(vpn) {
            self.cores[core].last_fetch_page = (vpn, ppn);
            ppn
        } else {
            self.cores[core].stats.itlb_misses += 1;
            out.tlb_miss = true;
            let ppn = self.second_level_translate(core, vpn, &mut out);
            self.cores[core].itlb.insert(vpn, ppn);
            self.cores[core].last_fetch_page = (vpn, ppn);
            ppn
        };
        debug_assert_eq!(
            crate::addr::compose(ppn, vaddr.page_offset()),
            self.pt.translate(vaddr),
            "TLB-cached translation diverged from the page table for {vaddr:?}"
        );
        out.paddr = crate::addr::compose(ppn, vaddr.page_offset());
        let line = out.paddr.line();
        let c = &mut self.cores[core];
        c.stats.l1i_accesses += 1;
        out.cycles += self.cfg.l1i.hit_cycles as u64;
        let r1 = c.l1i.access(line, AccessKind::Read);
        if r1.hit {
            return out;
        }
        c.stats.l1i_misses += 1;
        out.l1_miss = true;
        // L1I is read-only: no writeback possible.
        Self::l2_demand(&self.cfg, c, &mut self.l3, &mut self.dram, line, &mut out);
        out
    }

    /// Resolve a first-level TLB miss: consult the STLB if configured,
    /// walking the page table only on an STLB miss. Returns the PPN.
    fn second_level_translate(&mut self, core: CoreId, vpn: u64, out: &mut AccessOutcome) -> u64 {
        let c = &mut self.cores[core];
        if let Some(stlb) = c.stlb.as_mut() {
            c.stats.stlb_lookups += 1;
            out.cycles += self.cfg.stlb_hit_cycles as u64;
            if let Some(ppn) = stlb.lookup(vpn) {
                return ppn;
            }
            c.stats.stlb_misses += 1;
        }
        self.page_walk(core, vpn, out);
        let ppn = self.pt.translate(VAddr(vpn << crate::addr::PAGE_BITS)).ppn();
        if let Some(stlb) = self.cores[core].stlb.as_mut() {
            stlb.insert(vpn, ppn);
        }
        ppn
    }

    /// L2 demand access shared by data, fetch and walker paths. Takes the
    /// active core's private slice plus the shared back-end as split
    /// borrows, so the descent does no repeated `cores[core]` indexing.
    fn l2_demand(
        cfg: &HierarchyConfig,
        c: &mut CorePrivate,
        l3: &mut SetAssocCache,
        dram: &mut DramModel,
        line: u64,
        out: &mut AccessOutcome,
    ) {
        c.stats.l2_accesses += 1;
        out.cycles += cfg.l2.hit_cycles as u64;
        let r2 = c.l2.access(line, AccessKind::Read);
        if r2.hit {
            return;
        }
        c.stats.l2_misses += 1;
        out.l2_miss = true;
        if let Some(victim) = r2.writeback {
            Self::writeback_to_l3(c, l3, dram, victim);
        }
        // Train the prefetcher; a prefetch fill pulls the next line into L2
        // through L3/DRAM without charging demand latency.
        if let Some(pf_line) = c.prefetcher.on_miss(line) {
            c.stats.prefetches += 1;
            Self::prefetch_fill(c, l3, dram, pf_line);
        }
        // L3.
        c.stats.l3_accesses += 1;
        out.cycles += cfg.l3.hit_cycles as u64;
        let r3 = l3.access(line, AccessKind::Read);
        if r3.hit {
            return;
        }
        c.stats.l3_misses += 1;
        out.l3_miss = true;
        if let Some(victim) = r3.writeback {
            c.stats.dram_writes += 1;
            dram.access(victim, true);
        }
        out.ns += dram.access(line, false);
        c.stats.dram_reads += 1;
    }

    /// Dirty line leaving an L1D: write into L2 (and ripple further).
    fn writeback_to_l2(
        cfg: &HierarchyConfig,
        c: &mut CorePrivate,
        l3: &mut SetAssocCache,
        dram: &mut DramModel,
        line: u64,
    ) {
        let _ = cfg;
        c.stats.writebacks += 1;
        let r = c.l2.access(line, AccessKind::Write);
        if let Some(victim) = r.writeback {
            Self::writeback_to_l3(c, l3, dram, victim);
        }
    }

    /// Dirty line leaving an L2: write into L3 (and ripple to DRAM).
    fn writeback_to_l3(
        c: &mut CorePrivate,
        l3: &mut SetAssocCache,
        dram: &mut DramModel,
        line: u64,
    ) {
        c.stats.writebacks += 1;
        let r = l3.access(line, AccessKind::Write);
        if let Some(victim) = r.writeback {
            c.stats.dram_writes += 1;
            dram.access(victim, true);
        }
    }

    /// Install a prefetched line into L2, fetching it from L3/DRAM.
    fn prefetch_fill(c: &mut CorePrivate, l3: &mut SetAssocCache, dram: &mut DramModel, line: u64) {
        if !l3.probe(line) {
            // Pull into L3 from DRAM first (prefetch counts as DRAM read).
            if let Some(victim) = l3.fill(line) {
                c.stats.dram_writes += 1;
                dram.access(victim, true);
            }
            c.stats.dram_reads += 1;
            dram.access(line, false);
        }
        if let Some(victim) = c.l2.fill(line) {
            Self::writeback_to_l3(c, l3, dram, victim);
        }
    }

    /// Charge a hardware page walk: `walk_levels` physical reads through
    /// L2 → L3 → DRAM.
    ///
    /// Walker references are charged for latency and counted in
    /// [`MemStats::walk_reads`]/[`MemStats::dram_reads`], but NOT in the
    /// L2/L3 demand-miss counters: the paper's PAPI presets
    /// (`PAPI_L2_TCM`/`PAPI_L3_TCM`) count demand traffic, and folding
    /// walker refs in would fabricate the L2/L3 blow-up that Table II
    /// explicitly does *not* show for SIRE/RSM at low caps.
    fn page_walk(&mut self, core: CoreId, vpn: u64, out: &mut AccessOutcome) {
        let addrs = self.pt.walk_addrs(vpn, self.cfg.walk_levels);
        let c = &mut self.cores[core];
        for &pa in addrs.iter() {
            let line = pa.line();
            c.stats.walk_reads += 1;
            // Walker reads skip L1 and go straight to L2.
            out.cycles += self.cfg.l2.hit_cycles as u64;
            let r2 = c.l2.access(line, AccessKind::Read);
            if r2.hit {
                continue;
            }
            if let Some(victim) = r2.writeback {
                Self::writeback_to_l3(c, &mut self.l3, &mut self.dram, victim);
            }
            out.cycles += self.cfg.l3.hit_cycles as u64;
            let r3 = self.l3.access(line, AccessKind::Read);
            if r3.hit {
                continue;
            }
            if let Some(victim) = r3.writeback {
                c.stats.dram_writes += 1;
                self.dram.access(victim, true);
            }
            out.ns += self.dram.access(line, false);
            c.stats.dram_reads += 1;
        }
    }

    /// Batched sequential access: one [`Self::data_access`] per line over
    /// `[base, base + bytes)`, summing latencies and OR-ing the miss flags.
    /// Streaming callers (warm-up passes, SAR-style kernels) amortize the
    /// per-call dispatch over the whole range.
    pub fn access_range(
        &mut self,
        core: CoreId,
        base: VAddr,
        bytes: u64,
        write: bool,
    ) -> AccessOutcome {
        let mut total = AccessOutcome::default();
        let mut off = 0;
        while off < bytes {
            let out = self.data_access(core, base.add(off), write);
            total.cycles += out.cycles;
            total.ns += out.ns;
            total.l1_miss |= out.l1_miss;
            total.l2_miss |= out.l2_miss;
            total.l3_miss |= out.l3_miss;
            total.tlb_miss |= out.tlb_miss;
            off += LINE_BYTES;
        }
        total
    }

    /// Touch a whole virtual range for warm-up (one read per line).
    pub fn warm_range(&mut self, core: CoreId, base: VAddr, bytes: u64) {
        self.access_range(core, base, bytes, false);
    }

    /// Flush all caches and TLBs (machine reset between runs).
    pub fn flush_all(&mut self) {
        for c in &mut self.cores {
            c.l1i.flush_all();
            c.l1d.flush_all();
            c.l2.flush_all();
            c.itlb.flush();
            c.dtlb.flush();
            if let Some(stlb) = &mut c.stlb {
                stlb.flush();
            }
            c.last_data_page = NO_PAGE;
            c.last_fetch_page = NO_PAGE;
        }
        self.l3.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::tiny(), 1, 0xabc)
    }

    #[test]
    fn cold_access_traverses_all_levels() {
        let mut m = h();
        let out = m.data_access(0, VAddr(0x10_0000), false);
        assert!(out.l1_miss && out.l2_miss && out.l3_miss && out.tlb_miss);
        assert!(out.ns > 0.0, "DRAM charged");
        let s = m.stats(0);
        assert_eq!(s.l1d_accesses, 1);
        assert_eq!(s.l1d_misses, 1);
        assert_eq!(s.dtlb_misses, 1);
        assert_eq!(s.walk_reads, 4);
        assert!(s.dram_reads >= 1);
    }

    #[test]
    fn warm_access_hits_l1_with_no_dram_time() {
        let mut m = h();
        m.data_access(0, VAddr(0x10_0000), false);
        let out = m.data_access(0, VAddr(0x10_0000), false);
        assert!(!out.l1_miss && !out.tlb_miss);
        assert_eq!(out.ns, 0.0);
        assert_eq!(out.cycles, m.config().l1d.hit_cycles as u64);
    }

    #[test]
    fn same_page_reuses_tlb_entry() {
        let mut m = h();
        m.data_access(0, VAddr(0x20_0000), false);
        let before = m.stats(0).dtlb_misses;
        m.data_access(0, VAddr(0x20_0040), false);
        assert_eq!(m.stats(0).dtlb_misses, before);
    }

    #[test]
    fn fetch_path_uses_itlb_and_l1i() {
        let mut m = h();
        let out = m.fetch_access(0, VAddr(0x40_0000));
        assert!(out.l1_miss);
        let s = m.stats(0);
        assert_eq!(s.itlb_misses, 1);
        assert_eq!(s.l1i_misses, 1);
        assert_eq!(s.l1d_accesses, 0, "fetch does not touch L1D");
    }

    #[test]
    fn dirty_data_eventually_reaches_dram_as_writes() {
        let mut m = h();
        // Write a region far larger than L3 so dirty lines ripple out.
        let span = m.config().l3.size_bytes * 4;
        let mut off = 0;
        while off < span {
            m.data_access(0, VAddr(0x100_0000 + off), true);
            off += 64;
        }
        // Stream a second disjoint region to force evictions of the dirty set.
        let mut off = 0;
        while off < span {
            m.data_access(0, VAddr(0x9000_0000 + off), false);
            off += 64;
        }
        assert!(m.stats(0).dram_writes > 0, "dirty evictions become DRAM writes");
        assert!(m.stats(0).writebacks > 0);
    }

    #[test]
    fn reconfig_roundtrip_reports_applied_state() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::e5_2680(), 1, 1);
        let mut r = MemReconfig::full();
        r.l3_ways = 10;
        r.itlb_entries = 32;
        r.mem_gate = crate::dram::MemGateLevel::Heavy;
        m.apply(r);
        let cur = m.current_reconfig();
        assert_eq!(cur.l3_ways, 10);
        assert_eq!(cur.itlb_entries, 32);
        assert_eq!(cur.mem_gate, crate::dram::MemGateLevel::Heavy);
    }

    #[test]
    fn severe_mem_gate_slows_dram_bound_access() {
        let mut m = h();
        // Warm the page's translation so both measurements are pure data
        // DRAM accesses (no walker refs mixed in).
        m.data_access(0, VAddr(0x55_0000), false);
        let cold = m.data_access(0, VAddr(0x55_0000 + 256), false).ns;
        let mut r = m.current_reconfig();
        r.mem_gate = crate::dram::MemGateLevel::Severe;
        m.apply(r);
        let cold2 = m.data_access(0, VAddr(0x55_0000 + 512), false).ns;
        assert!(cold2 > cold * 8.0, "{cold2} vs {cold}");
    }

    #[test]
    fn cores_have_private_l1_but_share_l3() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::tiny(), 2, 5);
        m.data_access(0, VAddr(0x70_0000), false);
        // Core 1 misses its private L1/L2 but hits the shared L3.
        let out = m.data_access(1, VAddr(0x70_0000), false);
        assert!(out.l1_miss && out.l2_miss);
        assert!(!out.l3_miss, "L3 shared across cores");
    }

    #[test]
    fn prefetcher_reduces_demand_l2_misses_for_streams() {
        let cfg = HierarchyConfig::e5_2680();
        let mut with = MemoryHierarchy::new(cfg, 1, 9);
        let mut without = {
            let mut c = cfg;
            c.l2_prefetch = false;
            MemoryHierarchy::new(c, 1, 9)
        };
        let n = 4096u64;
        for i in 0..n {
            with.data_access(0, VAddr(0x800_0000 + i * 64), false);
            without.data_access(0, VAddr(0x800_0000 + i * 64), false);
        }
        assert!(with.stats(0).prefetches > 0);
        assert!(
            with.stats(0).l2_misses < without.stats(0).l2_misses,
            "{} vs {}",
            with.stats(0).l2_misses,
            without.stats(0).l2_misses
        );
    }

    #[test]
    fn stlb_absorbs_first_level_tlb_misses() {
        // 32 pages cycled: thrashes the tiny 8-entry DTLB, fits a 64-entry
        // STLB — walks happen once per page, not once per DTLB miss.
        let mk = |stlb: bool| {
            let mut cfg = HierarchyConfig::tiny();
            if stlb {
                cfg.stlb = Some(crate::config::TlbGeometry {
                    entries: 64,
                    ways: 4,
                    policy: crate::replacement::ReplacementPolicy::Lru,
                });
            }
            let mut m = MemoryHierarchy::new(cfg, 1, 33);
            for round in 0..10u64 {
                for page in 0..32u64 {
                    m.data_access(0, VAddr(0x100_0000 + page * 4096 + round * 64), false);
                }
            }
            m.stats(0)
        };
        let without = mk(false);
        let with = mk(true);
        // Same first-level miss pressure either way…
        assert!(with.dtlb_misses > 100, "DTLB thrashes: {}", with.dtlb_misses);
        // …but the STLB absorbs nearly all the walks.
        assert!(with.stlb_lookups > 0 && without.stlb_lookups == 0);
        assert!(
            with.walk_reads < without.walk_reads / 4,
            "walks {} vs {}",
            with.walk_reads,
            without.walk_reads
        );
    }

    #[test]
    fn stlb_hit_is_cheaper_than_a_walk() {
        let cfg = HierarchyConfig::tiny().with_stlb();
        let mut m = MemoryHierarchy::new(cfg, 1, 34);
        // Prime page A, then evict it from the 8-entry DTLB (not the STLB).
        m.data_access(0, VAddr(0x200_0000), false);
        for page in 1..=16u64 {
            m.data_access(0, VAddr(0x200_0000 + page * 4096), false);
        }
        let walks_before = m.stats(0).walk_reads;
        let out = m.data_access(0, VAddr(0x200_0000 + 64), false);
        assert!(out.tlb_miss, "DTLB evicted the entry");
        assert_eq!(m.stats(0).walk_reads, walks_before, "STLB hit avoided the walk");
    }

    #[test]
    fn apply_invalidates_last_page_memos() {
        let mut m = h();
        // tiny() DTLB: 8 entries, 4 ways, 2 sets. Both pages have even
        // VPNs (same set); inserts fill the first invalid way, so the
        // filler lands in way 0 and page A in way 1.
        m.data_access(0, VAddr(0x100_000), false); // filler, set 0 way 0
        m.data_access(0, VAddr(0x102_000), false); // page A, set 0 way 1
        m.data_access(0, VAddr(0x102_040), false); // warm the last-page memo
        let misses = m.stats(0).dtlb_misses;
        // Gating to one way per set evicts way 1. The memo must drop too,
        // or the next access would be reported as TLB-resident.
        let mut r = m.current_reconfig();
        r.dtlb_entries = 2;
        m.apply(r);
        let out = m.data_access(0, VAddr(0x102_080), false);
        assert!(out.tlb_miss, "gated-away entry must miss the DTLB");
        assert_eq!(m.stats(0).dtlb_misses, misses + 1);
    }

    #[test]
    fn access_range_matches_per_line_loop() {
        let mut batched = h();
        let mut serial = h();
        let base = VAddr(0x300_000);
        let bytes = 4 * 4096 + 130; // partial trailing line included
        let got = batched.access_range(0, base, bytes, false);
        let mut want = AccessOutcome::default();
        let mut off = 0;
        while off < bytes {
            let out = serial.data_access(0, base.add(off), false);
            want.cycles += out.cycles;
            want.ns += out.ns;
            want.l1_miss |= out.l1_miss;
            want.l2_miss |= out.l2_miss;
            want.l3_miss |= out.l3_miss;
            want.tlb_miss |= out.tlb_miss;
            off += 64;
        }
        assert_eq!(got.cycles, want.cycles);
        assert_eq!(got.ns.to_bits(), want.ns.to_bits());
        assert_eq!(
            (got.l1_miss, got.l2_miss, got.l3_miss, got.tlb_miss),
            (want.l1_miss, want.l2_miss, want.l3_miss, want.tlb_miss)
        );
        assert_eq!(batched.stats(0), serial.stats(0));
    }

    #[test]
    fn flush_all_restores_cold_state() {
        let mut m = h();
        m.data_access(0, VAddr(0x30_0000), false);
        m.flush_all();
        let out = m.data_access(0, VAddr(0x30_0000), false);
        assert!(out.l1_miss && out.tlb_miss);
    }
}
