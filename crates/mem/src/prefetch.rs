//! A next-line (adjacent-line) prefetcher for the L2.
//!
//! Sandy Bridge ships several prefetchers; a single next-line stream
//! prefetcher is enough to give streaming workloads (SIRE/RSM) realistic
//! behaviour: on an L2 demand miss the subsequent line is installed into L2
//! so a forward stream pays roughly every other miss at L2 while the L3 and
//! DRAM still see the full traffic.

/// Tracks recent miss lines and decides what to prefetch.
#[derive(Clone, Debug, Default)]
pub struct NextLinePrefetcher {
    last_miss: Option<u64>,
    issued: u64,
    enabled: bool,
}

impl NextLinePrefetcher {
    pub fn new(enabled: bool) -> Self {
        NextLinePrefetcher { last_miss: None, issued: 0, enabled }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.last_miss = None;
        }
    }

    /// Called on an L2 demand miss at `line`; returns a line to prefetch
    /// (if the miss extends a forward stream).
    pub fn on_miss(&mut self, line: u64) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let stream = matches!(self.last_miss, Some(prev) if line == prev + 1 || line == prev + 2);
        self.last_miss = Some(line);
        if stream {
            self.issued += 1;
            Some(line + 1)
        } else {
            None
        }
    }

    /// Prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_forward_stream() {
        let mut p = NextLinePrefetcher::new(true);
        assert_eq!(p.on_miss(100), None, "first miss trains only");
        assert_eq!(p.on_miss(101), Some(102));
        assert_eq!(p.on_miss(103), Some(104), "stride-2 from skip counts");
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn random_misses_do_not_trigger() {
        let mut p = NextLinePrefetcher::new(true);
        p.on_miss(100);
        assert_eq!(p.on_miss(500), None);
        assert_eq!(p.on_miss(10), None);
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn disabled_prefetcher_is_inert() {
        let mut p = NextLinePrefetcher::new(false);
        p.on_miss(1);
        assert_eq!(p.on_miss(2), None);
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn toggle_resets_training() {
        let mut p = NextLinePrefetcher::new(true);
        p.on_miss(1);
        p.set_enabled(false);
        p.set_enabled(true);
        assert_eq!(p.on_miss(2), None, "training lost across disable");
    }
}
