//! Snapshot counters for the whole hierarchy.
//!
//! [`MemStats`] is a plain value: subtract two snapshots to get the event
//! counts in a window. These are the raw events the `capsim-counters` PAPI
//! facade exposes and the columns of the paper's Table II.

use std::ops::Sub;

/// Event counts accumulated by a [`crate::hierarchy::MemoryHierarchy`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand loads+stores presented to L1D.
    pub l1d_accesses: u64,
    /// L1 data-cache misses (the paper's "L1 Misses" column).
    pub l1d_misses: u64,
    /// Instruction-fetch line accesses presented to L1I.
    pub l1i_accesses: u64,
    pub l1i_misses: u64,
    /// L2 accesses (demand L1 misses + walker reads), and misses.
    pub l2_accesses: u64,
    pub l2_misses: u64,
    /// L3 accesses and misses.
    pub l3_accesses: u64,
    pub l3_misses: u64,
    /// DTLB lookups/misses (the paper's "TLB Data Misses").
    pub dtlb_lookups: u64,
    pub dtlb_misses: u64,
    /// ITLB lookups/misses (the paper's "TLB Instruction Misses").
    pub itlb_lookups: u64,
    pub itlb_misses: u64,
    /// Unified second-level TLB lookups/misses (zero when no STLB is
    /// configured).
    pub stlb_lookups: u64,
    pub stlb_misses: u64,
    /// Page-walk memory reads issued.
    pub walk_reads: u64,
    /// DRAM reads and writes (line granularity).
    pub dram_reads: u64,
    pub dram_writes: u64,
    /// Lines written back between levels.
    pub writebacks: u64,
    /// Prefetch fills issued into L2.
    pub prefetches: u64,
}

impl MemStats {
    /// Total DRAM line transfers.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_reads + self.dram_writes
    }

    /// L2 miss ratio in a window; `None` if no accesses.
    pub fn l2_miss_rate(&self) -> Option<f64> {
        (self.l2_accesses > 0).then(|| self.l2_misses as f64 / self.l2_accesses as f64)
    }

    /// L3 miss ratio in a window; `None` if no accesses.
    pub fn l3_miss_rate(&self) -> Option<f64> {
        (self.l3_accesses > 0).then(|| self.l3_misses as f64 / self.l3_accesses as f64)
    }
}

impl Sub for MemStats {
    type Output = MemStats;

    fn sub(self, rhs: MemStats) -> MemStats {
        MemStats {
            l1d_accesses: self.l1d_accesses - rhs.l1d_accesses,
            l1d_misses: self.l1d_misses - rhs.l1d_misses,
            l1i_accesses: self.l1i_accesses - rhs.l1i_accesses,
            l1i_misses: self.l1i_misses - rhs.l1i_misses,
            l2_accesses: self.l2_accesses - rhs.l2_accesses,
            l2_misses: self.l2_misses - rhs.l2_misses,
            l3_accesses: self.l3_accesses - rhs.l3_accesses,
            l3_misses: self.l3_misses - rhs.l3_misses,
            dtlb_lookups: self.dtlb_lookups - rhs.dtlb_lookups,
            dtlb_misses: self.dtlb_misses - rhs.dtlb_misses,
            itlb_lookups: self.itlb_lookups - rhs.itlb_lookups,
            itlb_misses: self.itlb_misses - rhs.itlb_misses,
            stlb_lookups: self.stlb_lookups - rhs.stlb_lookups,
            stlb_misses: self.stlb_misses - rhs.stlb_misses,
            walk_reads: self.walk_reads - rhs.walk_reads,
            dram_reads: self.dram_reads - rhs.dram_reads,
            dram_writes: self.dram_writes - rhs.dram_writes,
            writebacks: self.writebacks - rhs.writebacks,
            prefetches: self.prefetches - rhs.prefetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_subtraction_yields_window_counts() {
        let a = MemStats { l1d_accesses: 100, l1d_misses: 10, ..Default::default() };
        let b = MemStats { l1d_accesses: 250, l1d_misses: 25, ..Default::default() };
        let w = b - a;
        assert_eq!(w.l1d_accesses, 150);
        assert_eq!(w.l1d_misses, 15);
    }

    #[test]
    fn miss_rates_handle_empty_windows() {
        let s = MemStats::default();
        assert_eq!(s.l2_miss_rate(), None);
        let s = MemStats { l2_accesses: 10, l2_misses: 5, ..Default::default() };
        assert_eq!(s.l2_miss_rate(), Some(0.5));
    }
}
