//! `capsim-mem` — the memory-hierarchy substrate of the capsim simulator.
//!
//! This crate models everything between a core's load/store port and the
//! DRAM pins of the simulated node:
//!
//! * set-associative caches with selectable replacement policies and
//!   write-back + write-allocate semantics ([`cache`]),
//! * instruction/data TLBs and a charged hardware page walk ([`tlb`],
//!   [`paging`]),
//! * a DRAM model with duty-cycled *memory gating* ([`dram`]),
//! * a next-line prefetcher ([`prefetch`]),
//! * and the glue that assembles per-core private levels plus a shared L3
//!   into a full hierarchy ([`hierarchy`]).
//!
//! The crate exists because the paper under reproduction (McCartney et al.,
//! ICPP-W 2012) infers from performance counters that, at low power caps,
//! Intel Node Manager reconfigures the memory hierarchy (cache-way gating,
//! TLB shrink, memory gating) in addition to DVFS. Those mechanisms are
//! first-class, runtime-reconfigurable operations here — see
//! [`hierarchy::MemoryHierarchy::apply`] and [`reconfig::MemReconfig`].
//!
//! All state is deterministic: no wall clock, no global RNG. Random
//! replacement uses a per-cache xorshift stream seeded at construction.

pub mod addr;
pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod paging;
pub mod prefetch;
pub mod reconfig;
pub mod replacement;
pub mod stats;
pub mod tlb;

pub use addr::{PAddr, VAddr, PAGE_BITS, PAGE_SIZE};
pub use cache::{AccessKind, CacheResponse, SetAssocCache};
pub use config::{CacheGeometry, HierarchyConfig, TlbGeometry};
pub use dram::{DramModel, MemGateLevel};
pub use hierarchy::{AccessOutcome, CoreId, MemoryHierarchy};
pub use paging::{PageTable, WalkPath, MAX_WALK_LEVELS};
pub use reconfig::MemReconfig;
pub use replacement::ReplacementPolicy;
pub use stats::MemStats;
pub use tlb::Tlb;
