//! Geometry and latency configuration for the memory hierarchy.
//!
//! The defaults reproduce the paper's experimental platform (§III): an
//! Intel Sandy Bridge E5-2680 core with 32 KiB 8-way L1I/L1D, 256 KiB 8-way
//! unified L2, a 20 MiB 20-way shared L3, 64-byte lines everywhere, and
//! 4 KiB-page TLBs. Latencies are calibrated against the paper's Figure 3
//! stride microbenchmark: L1 ≈1.5 ns, L2 ≈3.5 ns, L3 ≈8.6 ns and
//! main-memory ≈60 ns at the nominal 2.7 GHz.

use crate::addr::LINE_BYTES;
use crate::replacement::ReplacementPolicy;

/// Geometry and latency of a single cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes (at full associativity, i.e. before any
    /// way gating).
    pub size_bytes: u64,
    /// Line size in bytes; the platform uses 64 B at every level.
    pub line_bytes: u64,
    /// Number of ways provisioned in silicon. Way gating can reduce the
    /// number of *active* ways at run time but never exceed this.
    pub ways: u32,
    /// Hit latency in **core cycles** (caches are clocked with the core, so
    /// their latency in nanoseconds scales with DVFS).
    pub hit_cycles: u32,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheGeometry {
    /// Number of sets = size / (line * ways). Way gating does not change
    /// the set count; it only disables ways within each set.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways as u64)
    }

    /// Panics with a descriptive message if the geometry is degenerate.
    pub fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.ways >= 1, "cache needs at least one way");
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes * self.ways as u64),
            "size must be a multiple of line*ways"
        );
        assert!(self.sets().is_power_of_two(), "set count must be a power of two");
    }
}

/// Geometry of a TLB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbGeometry {
    /// Number of entries provisioned; runtime shrink can reduce the active
    /// count (the mechanism the paper infers behind the iTLB-miss blowup).
    pub entries: u32,
    /// Associativity. `entries % ways == 0` is required.
    pub ways: u32,
    /// Replacement policy within a set.
    pub policy: ReplacementPolicy,
}

impl TlbGeometry {
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }

    pub fn validate(&self) {
        assert!(self.ways >= 1 && self.entries >= self.ways);
        assert_eq!(self.entries % self.ways, 0, "entries must divide into ways");
        assert!(self.sets().is_power_of_two(), "TLB set count must be a power of two");
    }
}

/// Full hierarchy configuration: per-core private levels, the shared L3,
/// DRAM timing and the page walker.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    pub l1i: CacheGeometry,
    pub l1d: CacheGeometry,
    pub l2: CacheGeometry,
    pub l3: CacheGeometry,
    pub itlb: TlbGeometry,
    pub dtlb: TlbGeometry,
    /// Optional unified second-level TLB (Sandy Bridge ships a 512-entry
    /// 4-way STLB). `None` by default: the study's Table II calibration
    /// was performed without it, and the first-level TLBs alone already
    /// reproduce the paper's DTLB/ITLB signatures. Enable via
    /// [`HierarchyConfig::with_stlb`] for fidelity experiments.
    pub stlb: Option<TlbGeometry>,
    /// Extra core cycles for an STLB hit (beyond the L1 TLB lookup).
    pub stlb_hit_cycles: u32,
    /// DRAM access latency in **nanoseconds** (does not scale with DVFS).
    pub dram_ns: f64,
    /// Additional cycles charged per page-walk step that hits in the cache
    /// hierarchy (the walker itself issues physical reads that are charged
    /// through L2/L3).
    pub walk_levels: u32,
    /// Enable the L2 next-line prefetcher.
    pub l2_prefetch: bool,
    /// Seed for the replacement/eviction xorshift streams.
    pub seed: u64,
}

impl HierarchyConfig {
    /// The paper's platform: Sandy Bridge E5-2680 (§III), Figure-3
    /// calibrated latencies.
    pub fn e5_2680() -> Self {
        HierarchyConfig {
            l1i: CacheGeometry {
                size_bytes: 32 * 1024,
                line_bytes: LINE_BYTES,
                ways: 8,
                hit_cycles: 4,
                policy: ReplacementPolicy::TreePlru,
            },
            l1d: CacheGeometry {
                size_bytes: 32 * 1024,
                line_bytes: LINE_BYTES,
                ways: 8,
                hit_cycles: 4,
                policy: ReplacementPolicy::TreePlru,
            },
            // Latencies are additive along the miss path: an L2 hit costs
            // L1 + L2 cycles, an L3 hit L1 + L2 + L3. The sums reproduce
            // the paper's Figure 3: 4 cyc ≈ 1.5 ns (L1), 10 cyc ≈ 3.7 ns
            // (L2), 23 cyc ≈ 8.5 ns (L3), +51 ns DRAM ≈ 60 ns memory.
            l2: CacheGeometry {
                size_bytes: 256 * 1024,
                line_bytes: LINE_BYTES,
                ways: 8,
                hit_cycles: 6,
                policy: ReplacementPolicy::TreePlru,
            },
            l3: CacheGeometry {
                size_bytes: 20 * 1024 * 1024,
                line_bytes: LINE_BYTES,
                ways: 20,
                hit_cycles: 13,
                policy: ReplacementPolicy::Lru,
            },
            itlb: TlbGeometry { entries: 128, ways: 4, policy: ReplacementPolicy::Lru },
            dtlb: TlbGeometry { entries: 64, ways: 4, policy: ReplacementPolicy::Lru },
            stlb: None,
            stlb_hit_cycles: 7,
            dram_ns: 51.0,
            walk_levels: 4,
            l2_prefetch: true,
            seed: 0x5eed_cafe,
        }
    }

    /// A shrunken hierarchy for fast unit tests: same shape, tiny sizes.
    pub fn tiny() -> Self {
        let mut c = Self::e5_2680();
        c.l1i.size_bytes = 1024;
        c.l1d.size_bytes = 1024;
        c.l2.size_bytes = 4096;
        c.l3.size_bytes = 16 * 1024;
        c.l3.ways = 16;
        c.itlb.entries = 8;
        c.dtlb.entries = 8;
        c
    }

    /// Enable the Sandy Bridge 512-entry 4-way unified STLB.
    pub fn with_stlb(mut self) -> Self {
        self.stlb = Some(TlbGeometry { entries: 512, ways: 4, policy: ReplacementPolicy::Lru });
        self
    }

    pub fn validate(&self) {
        self.l1i.validate();
        self.l1d.validate();
        self.l2.validate();
        self.l3.validate();
        self.itlb.validate();
        self.dtlb.validate();
        if let Some(stlb) = &self.stlb {
            stlb.validate();
        }
        assert!(self.dram_ns > 0.0);
        assert!(
            self.walk_levels >= 1 && self.walk_levels <= crate::paging::MAX_WALK_LEVELS,
            "walk_levels must be within 1..={}",
            crate::paging::MAX_WALK_LEVELS
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_2680_matches_published_geometry() {
        let c = HierarchyConfig::e5_2680();
        c.validate();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 16384);
        assert_eq!(c.l1d.ways, 8);
        assert_eq!(c.l3.ways, 20);
        assert_eq!(c.itlb.entries, 128);
    }

    #[test]
    fn tiny_config_is_valid() {
        HierarchyConfig::tiny().validate();
    }

    #[test]
    fn figure3_latency_anchors_hold_at_nominal_frequency() {
        // At 2.7 GHz one cycle is ~0.37 ns. The paper's Figure 3 reports
        // L1 ≈ 1.5 ns, L2 ≈ 3.5 ns, L3 ≈ 8.6 ns, memory ≈ 60 ns.
        // Latencies accumulate along the miss path.
        let c = HierarchyConfig::e5_2680();
        let ns = |cyc: u32| cyc as f64 / 2.7;
        let l1 = c.l1d.hit_cycles;
        let l2 = l1 + c.l2.hit_cycles;
        let l3 = l2 + c.l3.hit_cycles;
        assert!((ns(l1) - 1.5).abs() < 0.2);
        assert!((ns(l2) - 3.5).abs() < 0.5);
        assert!((ns(l3) - 8.6).abs() < 0.6);
        assert!((ns(l3) + c.dram_ns - 60.0).abs() < 3.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn degenerate_geometry_is_rejected() {
        let mut g = HierarchyConfig::e5_2680().l1d;
        g.size_bytes = 3 * 1024; // 6 sets: not a power of two
        g.validate();
    }
}
