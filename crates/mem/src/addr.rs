//! Address newtypes and page/line arithmetic.
//!
//! The simulator uses 64-bit virtual and physical addresses. Pages are the
//! classic 4 KiB of the paper's Sandy Bridge platform; cache-line size is a
//! property of each cache (see [`crate::config::CacheGeometry`]), but the
//! helpers here default to the platform's 64-byte line.

use std::fmt;

/// log2 of the page size (4 KiB pages).
pub const PAGE_BITS: u32 = 12;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_BITS;
/// The platform line size used by all three cache levels (Table in §III:
/// "block sizes of the L1 data, L2, and L3 caches are identical, i.e. 64B").
pub const LINE_BYTES: u64 = 64;

/// A virtual address in the simulated address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

/// A physical address produced by [`crate::paging::PageTable`] translation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub u64);

impl VAddr {
    /// Virtual page number (address >> 12).
    #[inline]
    pub fn vpn(self) -> u64 {
        self.0 >> PAGE_BITS
    }

    /// Offset within the 4 KiB page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// The address advanced by `bytes`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, bytes: u64) -> VAddr {
        VAddr(self.0 + bytes)
    }
}

impl PAddr {
    /// Physical page number.
    #[inline]
    pub fn ppn(self) -> u64 {
        self.0 >> PAGE_BITS
    }

    /// 64-byte line address (i.e. address with the low 6 bits cleared).
    #[inline]
    pub fn line(self) -> u64 {
        self.0 / LINE_BYTES
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{:#x}", self.0)
    }
}

impl fmt::Debug for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

/// Compose a physical address from a physical page number and page offset.
#[inline]
pub fn compose(ppn: u64, offset: u64) -> PAddr {
    debug_assert!(offset < PAGE_SIZE);
    PAddr((ppn << PAGE_BITS) | offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offset_partition_the_address() {
        let a = VAddr(0x1234_5678);
        assert_eq!(a.vpn() << PAGE_BITS | a.page_offset(), a.0);
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.vpn(), 0x12345);
    }

    #[test]
    fn compose_inverts_decomposition() {
        let p = PAddr(0xdead_beef);
        assert_eq!(compose(p.ppn(), p.0 & (PAGE_SIZE - 1)), p);
    }

    #[test]
    fn line_numbers_change_every_64_bytes() {
        assert_eq!(PAddr(0).line(), PAddr(63).line());
        assert_ne!(PAddr(63).line(), PAddr(64).line());
    }

    #[test]
    fn addresses_in_same_page_share_vpn() {
        let base = VAddr(7 * PAGE_SIZE);
        for off in [0u64, 1, 63, 4095] {
            assert_eq!(base.add(off).vpn(), base.vpn());
        }
        assert_eq!(base.add(PAGE_SIZE).vpn(), base.vpn() + 1);
    }
}
