//! Replacement policies for set-associative structures.
//!
//! Three policies are provided:
//!
//! * **LRU** — exact least-recently-used, kept as an ordering over ways.
//! * **Tree-PLRU** — the binary-tree pseudo-LRU used by real Sandy Bridge
//!   L1/L2 arrays.
//! * **Random** — xorshift-driven victim choice (deterministic per seed).
//!
//! A [`SetState`] instance tracks one set. Policies must cope with *way
//! gating*: at any time only ways `0..active_ways` are eligible, and the
//! victim returned is always within the active range.

/// Which replacement policy a cache or TLB uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplacementPolicy {
    Lru,
    TreePlru,
    Random,
}

/// Per-set replacement state.
#[derive(Clone, Debug)]
pub enum SetState {
    /// Exact LRU as per-way timestamps: larger stamp = more recent.
    /// Stamps are pairwise distinct, so the victim (the minimum stamp
    /// among active ways) is unique — the same total recency order the
    /// classic move-to-front list maintains, but `touch` is one store
    /// instead of a scan plus two shifts.
    Lru { stamps: Vec<u32>, clock: u32 },
    /// Tree-PLRU bits, stored as a flat array of internal nodes.
    TreePlru { bits: u32, ways: u8 },
    /// No state; victim is drawn from the shared xorshift stream.
    Random,
}

/// Per-way `(clear, set)` touch masks and the 128-entry victim table for
/// the 8-way tree, precomputed at compile time by running the interval
/// walk itself — so the tables are equivalent to the walk by construction.
/// 8-way is the hot case (Sandy Bridge L1/L2); a table lookup replaces
/// three data-dependent branches that mispredict under real way traffic.
const fn plru8_touch_masks() -> ([u32; 8], [u32; 8]) {
    let mut clear = [0u32; 8];
    let mut setv = [0u32; 8];
    let mut way = 0u32;
    while way < 8 {
        let mut lo = 0u32;
        let mut hi = 8u32;
        let mut node = 0u32;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            clear[way as usize] |= 1 << node;
            if way < mid {
                setv[way as usize] |= 1 << node; // point right (away)
                node = 2 * node + 1;
                hi = mid;
            } else {
                node = 2 * node + 2;
                lo = mid;
            }
        }
        way += 1;
    }
    (clear, setv)
}

const fn plru8_victim_table() -> [u8; 128] {
    let mut lut = [0u8; 128];
    let mut bits = 0u32;
    while bits < 128 {
        let mut lo = 0u32;
        let mut hi = 8u32;
        let mut node = 0u32;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if (bits >> node) & 1 == 0 {
                node = 2 * node + 1;
                hi = mid;
            } else {
                node = 2 * node + 2;
                lo = mid;
            }
        }
        lut[bits as usize] = lo as u8;
        bits += 1;
    }
    lut
}

const PLRU8_TOUCH: ([u32; 8], [u32; 8]) = plru8_touch_masks();
const PLRU8_VICTIM: [u8; 128] = plru8_victim_table();

impl SetState {
    pub fn new(policy: ReplacementPolicy, ways: u32) -> SetState {
        debug_assert!((1..=64).contains(&ways));
        match policy {
            ReplacementPolicy::Lru => SetState::Lru {
                // Way 0 starts most recent, way `ways-1` is the first victim
                // (the historical fresh-list order).
                stamps: (0..ways).map(|w| ways - 1 - w).collect(),
                clock: ways,
            },
            ReplacementPolicy::TreePlru => SetState::TreePlru { bits: 0, ways: ways as u8 },
            ReplacementPolicy::Random => SetState::Random,
        }
    }

    /// Record a touch (hit or fill) of `way`.
    #[inline]
    pub fn touch(&mut self, way: u32) {
        match self {
            SetState::Lru { stamps, clock } => {
                stamps[way as usize] = *clock;
                *clock += 1;
                if *clock == u32::MAX {
                    Self::renormalize(stamps, clock);
                }
            }
            SetState::TreePlru { bits, ways } => {
                // Walk from the root to the leaf for `way`, setting each
                // internal node to point *away* from the path taken.
                let ways = *ways as u32;
                if ways == 8 {
                    *bits = (*bits & !PLRU8_TOUCH.0[way as usize]) | PLRU8_TOUCH.1[way as usize];
                } else {
                    let mut lo = 0u32;
                    let mut hi = ways;
                    let mut node = 0u32;
                    while hi - lo > 1 {
                        let mid = lo + (hi - lo) / 2;
                        if way < mid {
                            *bits |= 1 << node; // point right (away)
                            node = 2 * node + 1;
                            hi = mid;
                        } else {
                            *bits &= !(1 << node); // point left (away)
                            node = 2 * node + 2;
                            lo = mid;
                        }
                    }
                }
            }
            SetState::Random => {}
        }
    }

    /// Rank-compress stamps back to `0..ways`, preserving the recency
    /// order. Runs once per ~4 G touches of one set.
    #[cold]
    fn renormalize(stamps: &mut [u32], clock: &mut u32) {
        let mut order: Vec<u32> = (0..stamps.len() as u32).collect();
        order.sort_unstable_by_key(|&w| stamps[w as usize]);
        for (rank, &w) in order.iter().enumerate() {
            stamps[w as usize] = rank as u32;
        }
        *clock = stamps.len() as u32;
    }

    /// Choose a victim among ways `0..active_ways`.
    ///
    /// `rng` supplies randomness for the `Random` policy (and is advanced
    /// regardless, to keep streams aligned across policies in A/B tests).
    #[inline]
    pub fn victim(&self, active_ways: u32, rng: &mut XorShift64) -> u32 {
        let r = rng.next();
        debug_assert!(active_ways >= 1);
        match self {
            SetState::Lru { stamps, .. } => {
                // The least recently used way within the active range:
                // unique because stamps are pairwise distinct. Packing
                // (stamp, way) into one u64 makes the reduction a chain
                // of branchless `min`s.
                let mut best = u64::MAX;
                for (w, &s) in stamps.iter().take(active_ways as usize).enumerate() {
                    best = best.min((u64::from(s) << 6) | w as u64);
                }
                (best & 63) as u32
            }
            SetState::TreePlru { bits, ways } => {
                let ways = *ways as u32;
                let leaf = if ways == 8 {
                    PLRU8_VICTIM[(*bits & 0x7f) as usize] as u32
                } else {
                    let mut lo = 0u32;
                    let mut hi = ways;
                    let mut node = 0u32;
                    while hi - lo > 1 {
                        let mid = lo + (hi - lo) / 2;
                        let go_left = (*bits >> node) & 1 == 0;
                        if go_left {
                            node = 2 * node + 1;
                            hi = mid;
                        } else {
                            node = 2 * node + 2;
                            lo = mid;
                        }
                    }
                    lo
                };
                // If gating pushed the PLRU leaf out of range, clamp into
                // the active ways (hardware gating invalidates high ways).
                leaf.min(active_ways - 1)
            }
            SetState::Random => (r % active_ways as u64) as u32,
        }
    }
}

/// Minimal deterministic xorshift64* stream.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut s = SetState::new(ReplacementPolicy::Lru, 4);
        let mut rng = XorShift64::new(1);
        for w in [0u32, 1, 2, 3] {
            s.touch(w);
        }
        // 0 is oldest now.
        assert_eq!(s.victim(4, &mut rng), 0);
        s.touch(0);
        assert_eq!(s.victim(4, &mut rng), 1);
    }

    #[test]
    fn lru_respects_way_gating() {
        let mut s = SetState::new(ReplacementPolicy::Lru, 8);
        let mut rng = XorShift64::new(1);
        for w in 0..8 {
            s.touch(w);
        }
        // With only 2 active ways the victim must be way 0 or 1.
        let v = s.victim(2, &mut rng);
        assert!(v < 2);
        assert_eq!(v, 0, "way 0 is least recent among active ways");
    }

    #[test]
    fn treeplru_never_immediately_victimizes_the_touched_way() {
        let mut rng = XorShift64::new(7);
        for ways in [2u32, 4, 8, 16, 20] {
            let mut s = SetState::new(ReplacementPolicy::TreePlru, ways);
            for w in 0..ways {
                s.touch(w);
                assert_ne!(s.victim(ways, &mut rng), w, "ways={ways} touched={w}");
            }
        }
    }

    #[test]
    fn treeplru_victim_in_active_range_under_gating() {
        let mut s = SetState::new(ReplacementPolicy::TreePlru, 8);
        let mut rng = XorShift64::new(3);
        for w in 0..8 {
            s.touch(w);
            for active in 1..=8u32 {
                assert!(s.victim(active, &mut rng) < active);
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let s = SetState::new(ReplacementPolicy::Random, 8);
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let va = s.victim(5, &mut a);
            assert_eq!(va, s.victim(5, &mut b));
            assert!(va < 5);
        }
    }

    #[test]
    fn xorshift_produces_distinct_values() {
        let mut r = XorShift64::new(9);
        let a = r.next();
        let b = r.next();
        assert_ne!(a, b);
    }
}
