//! Replacement policies for set-associative structures.
//!
//! Three policies are provided:
//!
//! * **LRU** — exact least-recently-used, kept as an ordering over ways.
//! * **Tree-PLRU** — the binary-tree pseudo-LRU used by real Sandy Bridge
//!   L1/L2 arrays.
//! * **Random** — xorshift-driven victim choice (deterministic per seed).
//!
//! A [`SetState`] instance tracks one set. Policies must cope with *way
//! gating*: at any time only ways `0..active_ways` are eligible, and the
//! victim returned is always within the active range.

/// Which replacement policy a cache or TLB uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplacementPolicy {
    Lru,
    TreePlru,
    Random,
}

/// Per-set replacement state.
#[derive(Clone, Debug)]
pub enum SetState {
    /// `order[0]` is the most recently used way; last is the LRU victim.
    Lru { order: Vec<u8> },
    /// Tree-PLRU bits, stored as a flat array of internal nodes.
    TreePlru { bits: u32, ways: u8 },
    /// No state; victim is drawn from the shared xorshift stream.
    Random,
}

impl SetState {
    pub fn new(policy: ReplacementPolicy, ways: u32) -> SetState {
        debug_assert!(ways >= 1 && ways <= 64);
        match policy {
            ReplacementPolicy::Lru => SetState::Lru { order: (0..ways as u8).collect() },
            ReplacementPolicy::TreePlru => SetState::TreePlru { bits: 0, ways: ways as u8 },
            ReplacementPolicy::Random => SetState::Random,
        }
    }

    /// Record a touch (hit or fill) of `way`.
    pub fn touch(&mut self, way: u32) {
        match self {
            SetState::Lru { order } => {
                let pos = order.iter().position(|&w| w as u32 == way).expect("way tracked");
                let w = order.remove(pos);
                order.insert(0, w);
            }
            SetState::TreePlru { bits, ways } => {
                // Walk from the root to the leaf for `way`, setting each
                // internal node to point *away* from the path taken.
                let ways = *ways as u32;
                let mut lo = 0u32;
                let mut hi = ways;
                let mut node = 0u32;
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if way < mid {
                        *bits |= 1 << node; // point right (away)
                        node = 2 * node + 1;
                        hi = mid;
                    } else {
                        *bits &= !(1 << node); // point left (away)
                        node = 2 * node + 2;
                        lo = mid;
                    }
                }
            }
            SetState::Random => {}
        }
    }

    /// Choose a victim among ways `0..active_ways`.
    ///
    /// `rng` supplies randomness for the `Random` policy (and is advanced
    /// regardless, to keep streams aligned across policies in A/B tests).
    pub fn victim(&self, active_ways: u32, rng: &mut XorShift64) -> u32 {
        let r = rng.next();
        debug_assert!(active_ways >= 1);
        match self {
            SetState::Lru { order } => {
                // The least recently used way within the active range.
                *order
                    .iter()
                    .rev()
                    .find(|&&w| (w as u32) < active_ways)
                    .expect("at least one active way tracked") as u32
            }
            SetState::TreePlru { bits, ways } => {
                let ways = *ways as u32;
                let mut lo = 0u32;
                let mut hi = ways;
                let mut node = 0u32;
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    let go_left = (*bits >> node) & 1 == 0;
                    if go_left {
                        node = 2 * node + 1;
                        hi = mid;
                    } else {
                        node = 2 * node + 2;
                        lo = mid;
                    }
                }
                // If gating pushed the PLRU leaf out of range, clamp into
                // the active ways (hardware gating invalidates high ways).
                lo.min(active_ways - 1)
            }
            SetState::Random => (r % active_ways as u64) as u32,
        }
    }
}

/// Minimal deterministic xorshift64* stream.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    #[inline]
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut s = SetState::new(ReplacementPolicy::Lru, 4);
        let mut rng = XorShift64::new(1);
        for w in [0u32, 1, 2, 3] {
            s.touch(w);
        }
        // 0 is oldest now.
        assert_eq!(s.victim(4, &mut rng), 0);
        s.touch(0);
        assert_eq!(s.victim(4, &mut rng), 1);
    }

    #[test]
    fn lru_respects_way_gating() {
        let mut s = SetState::new(ReplacementPolicy::Lru, 8);
        let mut rng = XorShift64::new(1);
        for w in 0..8 {
            s.touch(w);
        }
        // With only 2 active ways the victim must be way 0 or 1.
        let v = s.victim(2, &mut rng);
        assert!(v < 2);
        assert_eq!(v, 0, "way 0 is least recent among active ways");
    }

    #[test]
    fn treeplru_never_immediately_victimizes_the_touched_way() {
        let mut rng = XorShift64::new(7);
        for ways in [2u32, 4, 8, 16, 20] {
            let mut s = SetState::new(ReplacementPolicy::TreePlru, ways);
            for w in 0..ways {
                s.touch(w);
                assert_ne!(s.victim(ways, &mut rng), w, "ways={ways} touched={w}");
            }
        }
    }

    #[test]
    fn treeplru_victim_in_active_range_under_gating() {
        let mut s = SetState::new(ReplacementPolicy::TreePlru, 8);
        let mut rng = XorShift64::new(3);
        for w in 0..8 {
            s.touch(w);
            for active in 1..=8u32 {
                assert!(s.victim(active, &mut rng) < active);
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let s = SetState::new(ReplacementPolicy::Random, 8);
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let va = s.victim(5, &mut a);
            assert_eq!(va, s.victim(5, &mut b));
            assert!(va < 5);
        }
    }

    #[test]
    fn xorshift_produces_distinct_values() {
        let mut r = XorShift64::new(9);
        let a = r.next();
        let b = r.next();
        assert_ne!(a, b);
    }
}
