//! Property-based tests over the workloads: determinism, correctness of
//! the computed results, and cap-invariance of outputs.

use proptest::prelude::*;

use capsim_apps::{SireRsm, StereoMatching, Workload};
use capsim_node::{Machine, MachineConfig, PowerCap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// SAR imaging focuses its scatterers for any seed.
    #[test]
    fn sar_focuses_for_any_seed(seed in 1u64..500) {
        let mut m = Machine::new(MachineConfig::tiny(seed));
        let mut app = SireRsm::test_scale(seed);
        app.rsm_passes = 1;
        let out = app.run(&mut m);
        prop_assert!(out.quality > 3.0, "contrast {} at seed {seed}", out.quality);
    }

    /// The stereo result is identical regardless of the power cap: the
    /// cap changes timing, never data.
    #[test]
    fn stereo_output_is_cap_invariant(seed in 1u64..200, cap in 122.0f64..160.0) {
        let run = |c: Option<f64>| {
            let mut m = Machine::new(MachineConfig::tiny(seed));
            if let Some(w) = c {
                m.set_power_cap(Some(PowerCap::new(w).unwrap()));
            }
            let mut app = StereoMatching::test_scale(seed);
            app.sweeps = 2;
            app.run(&mut m).checksum
        };
        prop_assert_eq!(run(None), run(Some(cap)));
    }

    /// Workload runs are seed-deterministic end to end (checksum and
    /// machine counters).
    #[test]
    fn runs_are_deterministic(seed in 1u64..300) {
        let go = || {
            let mut m = Machine::new(MachineConfig::tiny(seed));
            let mut app = SireRsm::test_scale(seed);
            app.rsm_passes = 1;
            let out = app.run(&mut m);
            let s = m.finish_run();
            (out.checksum, s.counters.instructions_committed, s.mem.l2_misses, s.wall_s)
        };
        prop_assert_eq!(go(), go());
    }
}
