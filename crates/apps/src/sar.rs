//! SIRE/RSM: ultra-wideband impulse SAR image formation with recursive
//! sidelobe minimization.
//!
//! Modeled on Nguyen's ARL reports for the SIRE forward-looking radar
//! (the paper's reference \[4\]): the platform moves along a track emitting
//! wideband impulses; each aperture position records a time-domain return;
//! the image is formed by **backprojection** (for every pixel, sum the
//! returns sampled at that pixel's round-trip delay); **RSM** repeats the
//! backprojection with randomized aperture weightings and keeps the
//! per-pixel minimum magnitude, suppressing sidelobes that vary between
//! recompositions while true scatterers persist.
//!
//! The field data is not public, so the scene is synthetic: point
//! scatterers at known positions (DESIGN.md §5). That preserves the
//! paper-relevant behaviour — the image and RSM buffers form a streaming
//! working set larger than the L3 ("data stored in an array that is too
//! large to fit in any one of the caches", §IV-B), so L2/L3 miss counts
//! are compulsory/capacity-driven and insensitive to cache-way gating.
//!
//! Every load/store of the algorithm is mirrored through the machine; the
//! image itself is computed for real and verified (scatterer peaks must
//! dominate the background, and RSM must reduce the background level).

use capsim_node::Machine;

use crate::kernels::{CodeLayout, ColdCallPool};
use crate::workload::{Workload, WorkloadOutput};

/// Configuration and state of one SIRE/RSM run.
#[derive(Clone, Debug)]
pub struct SireRsm {
    /// Image width (cross-range pixels).
    pub width: usize,
    /// Image height (down-range pixels).
    pub height: usize,
    /// Number of aperture positions along the track.
    pub apertures: usize,
    /// Samples per recorded return.
    pub samples: usize,
    /// RSM recomposition passes (≥1; 1 = plain backprojection).
    pub rsm_passes: usize,
    /// Point scatterers planted in the scene.
    pub n_scatterers: usize,
    /// RNG seed (scene + RSM weights).
    pub seed: u64,
}

impl SireRsm {
    /// The scale used by the Table II / Figure 1 harness: the image + RSM
    /// buffers exceed the 20 MiB L3 (the paper's "Lam dataset (large
    /// image)" regime).
    pub fn paper_scale(seed: u64) -> Self {
        SireRsm {
            width: 1792,
            height: 1536,
            apertures: 16,
            // 48 KiB of returns: resident even in a way-gated L2, so
            // SIRE's L2 misses stay flat under capping (Table II).
            samples: 768,
            rsm_passes: 2,
            n_scatterers: 12,
            seed,
        }
    }

    /// A small instance for unit/integration tests (runs in milliseconds).
    pub fn test_scale(seed: u64) -> Self {
        SireRsm {
            width: 96,
            height: 80,
            apertures: 8,
            samples: 512,
            rsm_passes: 2,
            n_scatterers: 3,
            seed,
        }
    }

    /// Total simulated data footprint in bytes (image + RSM + returns).
    pub fn footprint_bytes(&self) -> u64 {
        (self.width * self.height * 4 * 2 + self.apertures * self.samples * 4) as u64
    }

    fn rng_stream(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed | 1;
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }
}

/// Scene geometry: pixels span `[0, scene_w] × [0, scene_h]` metres; the
/// track runs parallel to the x-axis at `y = -standoff`.
struct Geometry {
    scene_w: f64,
    scene_h: f64,
    standoff: f64,
    r_min: f64,
    /// Metres of range per return sample.
    dres: f64,
}

impl Geometry {
    fn new(w: usize, h: usize, samples: usize) -> Self {
        let scene_w = w as f64 * 0.1; // 10 cm pixels
        let scene_h = h as f64 * 0.1;
        let standoff = scene_h * 0.5;
        let r_min = standoff * 0.9;
        let r_max =
            ((scene_w * scene_w + (scene_h + standoff) * (scene_h + standoff)).sqrt()) * 1.05;
        Geometry { scene_w, scene_h, standoff, r_min, dres: (r_max - r_min) / samples as f64 }
    }

    fn aperture_x(&self, k: usize, n: usize) -> f64 {
        if n == 1 {
            self.scene_w * 0.5
        } else {
            self.scene_w * k as f64 / (n - 1) as f64
        }
    }

    /// One-way distance from aperture `k` to the pixel centre.
    fn range(&self, k: usize, n: usize, px: f64, py: f64) -> f64 {
        let dx = px - self.aperture_x(k, n);
        let dy = py + self.standoff;
        (dx * dx + dy * dy).sqrt()
    }

    fn sample_index(&self, r: f64, samples: usize) -> usize {
        (((r - self.r_min) / self.dres) as isize).clamp(0, samples as isize - 1) as usize
    }
}

/// A short Ricker (Mexican-hat) wavelet, the classic UWB impulse shape.
fn ricker(len: usize) -> Vec<f32> {
    let mut p = Vec::with_capacity(len);
    for i in 0..len {
        let t = (i as f64 - len as f64 / 2.0) / (len as f64 / 6.0);
        let t2 = t * t;
        p.push(((1.0 - t2) * (-t2 / 2.0).exp()) as f32);
    }
    p
}

impl Workload for SireRsm {
    fn name(&self) -> &'static str {
        "SIRE/RSM"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        let (w, h, na, ns) = (self.width, self.height, self.apertures, self.samples);
        let geo = Geometry::new(w, h, ns);
        let mut rng = Self::rng_stream(self.seed);

        // --- Scene: point scatterers at pseudo-random positions. ---------
        let scatterers: Vec<(f64, f64, f32)> = (0..self.n_scatterers)
            .map(|_| {
                let x = (rng() % 1000) as f64 / 1000.0 * geo.scene_w * 0.8 + geo.scene_w * 0.1;
                let y = (rng() % 1000) as f64 / 1000.0 * geo.scene_h * 0.8 + geo.scene_h * 0.1;
                (x, y, 1.0 + (rng() % 100) as f32 / 100.0)
            })
            .collect();

        // --- Simulated address space. ------------------------------------
        let returns_r = m.alloc((na * ns * 4) as u64);
        let image_r = m.alloc((w * h * 4) as u64);
        let rsm_r = m.alloc((w * h * 4) as u64);
        // Code layout: backprojection kernel + helper "library" functions
        // scattered across pages (range math, interpolation, windowing…).
        let bp_block = m.code_block(96, 14);
        let px_block = m.code_block(64, 10);
        let mut libs = CodeLayout::new(m, 48, 8);
        let mut cold = ColdCallPool::new(m, 192);

        // --- Phase 1: data acquisition (pulse synthesis into returns). ---
        let pulse = ricker(16);
        let mut returns = vec![0f32; na * ns];
        let acq_block = m.code_block(80, 12);
        for k in 0..na {
            for &(sx, sy, amp) in &scatterers {
                let idx0 = geo.sample_index(geo.range(k, na, sx, sy), ns);
                for (j, &p) in pulse.iter().enumerate() {
                    let idx = (idx0 + j).min(ns - 1);
                    m.exec_block(&acq_block);
                    returns[k * ns + idx] += amp * p;
                    m.store(returns_r.elem((k * ns + idx) as u64, 4));
                }
            }
            // Receiver noise.
            for s in 0..ns {
                returns[k * ns + s] += ((rng() % 2000) as f32 / 1000.0 - 1.0) * 0.02;
            }
        }

        // --- Phase 2: RSM backprojection passes. --------------------------
        let mut image = vec![0f32; w * h];
        let mut rsm = vec![f32::INFINITY; w * h];
        for pass in 0..self.rsm_passes.max(1) {
            // Randomized aperture weights; pass 0 is the plain composition.
            let weights: Vec<f32> = (0..na)
                .map(|_| if pass == 0 { 1.0 } else { 0.5 + (rng() % 1000) as f32 / 1000.0 })
                .collect();
            let wsum: f32 = weights.iter().sum();
            let mut pixel_counter = 0usize;
            for i in 0..h {
                let py = (i as f64 + 0.5) * 0.1;
                // Once per row: an excursion into cold library code.
                cold.call_next(m);
                for j in 0..w {
                    let px = (j as f64 + 0.5) * 0.1;
                    let mut acc = 0f32;
                    for k in 0..na {
                        m.exec_block(&bp_block);
                        let idx = geo.sample_index(geo.range(k, na, px, py), ns);
                        m.load(returns_r.elem((k * ns + idx) as u64, 4));
                        acc += weights[k] * returns[k * ns + idx];
                    }
                    let pix = i * w + j;
                    let val = (acc / wsum).abs();
                    image[pix] = val;
                    m.exec_block(&px_block);
                    m.store(image_r.elem(pix as u64, 4));
                    // RSM minimum update, fused into the pixel stream (the
                    // paper's "iteratively loops through the array
                    // elements to remove noise"): compulsory streaming
                    // misses over image+RSM buffers larger than the L3,
                    // insensitive to way gating.
                    m.load(rsm_r.elem(pix as u64, 4));
                    if val < rsm[pix] {
                        rsm[pix] = val;
                        m.store(rsm_r.elem(pix as u64, 4));
                    }
                    // Scattered helper call every 16th pixel: a realistic
                    // hot-library ITLB footprint without dominating fetch.
                    if pixel_counter & 0xf == 0 {
                        libs.call_next(m);
                    }
                    m.branch(&bp_block, j + 1 < w);
                    pixel_counter += 1;
                }
            }
            let _ = pixel_counter;
        }

        // --- Verification metrics. ----------------------------------------
        let mean: f64 = rsm.iter().map(|&v| v as f64).sum::<f64>() / (w * h) as f64;
        let mut peak = 0f64;
        for &(sx, sy, _) in &scatterers {
            let j = ((sx / 0.1) as usize).min(w - 1);
            let i = ((sy / 0.1) as usize).min(h - 1);
            // Search a small neighbourhood for the focused peak.
            let mut local = 0f64;
            for di in i.saturating_sub(2)..(i + 3).min(h) {
                for dj in j.saturating_sub(2)..(j + 3).min(w) {
                    local = local.max(rsm[di * w + dj] as f64);
                }
            }
            peak += local;
        }
        peak /= scatterers.len() as f64;
        let checksum: f64 = rsm.iter().step_by(251).map(|&v| v as f64).sum();
        WorkloadOutput {
            checksum,
            quality: if mean > 0.0 { peak / mean } else { 0.0 },
            items: (w * h) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    #[test]
    fn image_focuses_scatterers_above_background() {
        let mut m = Machine::new(MachineConfig::tiny(5));
        let mut app = SireRsm::test_scale(5);
        let out = app.run(&mut m);
        assert!(out.quality > 5.0, "peak/background = {}", out.quality);
        assert_eq!(out.items, 96 * 80);
    }

    #[test]
    fn output_is_deterministic_per_seed() {
        let run = |seed| {
            let mut m = Machine::new(MachineConfig::tiny(1));
            SireRsm::test_scale(seed).run(&mut m).checksum
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn rsm_suppresses_background_relative_to_single_pass() {
        let quality = |passes| {
            let mut m = Machine::new(MachineConfig::tiny(2));
            let mut app = SireRsm::test_scale(11);
            app.rsm_passes = passes;
            app.run(&mut m).quality
        };
        // More recomposition passes → lower background → higher contrast.
        assert!(quality(3) > quality(1) * 0.95, "RSM must not hurt contrast");
    }

    #[test]
    fn paper_scale_footprint_exceeds_l3() {
        let app = SireRsm::paper_scale(1);
        assert!(app.footprint_bytes() > 20 * 1024 * 1024);
    }

    #[test]
    fn streaming_profile_misses_in_l2_regardless_of_way_gating() {
        // The Table II signature: SIRE/RSM's L2/L3 misses barely move when
        // ways are gated, because its misses are compulsory/streaming.
        let run = |l2_ways: u32, l3_ways: u32| {
            let mut cfg = MachineConfig::tiny(3);
            cfg.hierarchy.l2.size_bytes = 2048; // tiny L2 so test streams
            let mut m = Machine::new(cfg);
            let mut r = capsim_mem::MemReconfig::full();
            r.l2_ways = l2_ways;
            r.l3_ways = l3_ways;
            // Apply directly through a custom rung by setting a cap of
            // none and reconfiguring via the test-only path: run the app
            // and compare misses. Way gating is applied pre-run here.
            let mut app = SireRsm::test_scale(3);
            app.rsm_passes = 1;
            // Direct reconfig: the machine's BMC-less path.
            m.apply_mem_reconfig(r);
            app.run(&mut m);
            m.finish_run().mem.l2_misses
        };
        let full = run(8, 16);
        let gated = run(2, 4);
        let ratio = gated as f64 / full as f64;
        assert!(ratio < 1.6, "streaming misses should be way-insensitive: {full} -> {gated}");
    }
}
