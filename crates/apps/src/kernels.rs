//! Small calibration kernels and the shared code-layout helper.
//!
//! The kernels bracket the workload space: [`AluBurst`] is purely
//! compute-bound (DVFS hurts it linearly, memory gating not at all),
//! [`StreamTriad`] is bandwidth-bound, [`PointerChase`] is latency-bound.
//! The technique detector (future-work item 2) uses them as probes.
//!
//! [`CodeLayout`] spreads a workload's "library functions" across many
//! code pages. Real applications call helpers scattered over the binary
//! and its shared libraries; cycling through such a footprint is what
//! makes ITLB-entry shrink visible (the paper's 60–85× ITLB-miss blow-up
//! at the lowest caps) while costing almost nothing at full TLB size.

use capsim_node::{CodeBlock, Machine};

use crate::workload::{Workload, WorkloadOutput};

/// A set of functions, each on its own code page, called round-robin.
pub struct CodeLayout {
    funcs: Vec<CodeBlock>,
    cursor: usize,
}

impl CodeLayout {
    /// Allocate `n_funcs` functions of `instrs` instructions each, one per
    /// page.
    pub fn new(m: &mut Machine, n_funcs: usize, instrs: u64) -> Self {
        assert!(n_funcs >= 1);
        let mut funcs = Vec::with_capacity(n_funcs);
        for _ in 0..n_funcs {
            m.code_page_align();
            funcs.push(m.code_block(instrs.max(4) * 4, instrs));
        }
        CodeLayout { funcs, cursor: 0 }
    }

    /// Number of functions (== code pages).
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Execute the next function in round-robin order.
    #[inline]
    pub fn call_next(&mut self, m: &mut Machine) {
        let b = self.funcs[self.cursor];
        self.cursor = (self.cursor + 1) % self.funcs.len();
        m.exec_block(&b);
    }

    /// Execute function `i mod len`.
    #[inline]
    pub fn call(&self, m: &mut Machine, i: usize) {
        m.exec_block(&self.funcs[i % self.funcs.len()]);
    }
}

/// A pool of rarely-called functions spread across more pages than the
/// ITLB holds. Real applications take occasional excursions into cold
/// library code (logging, allocation slow paths, I/O); cycling this pool
/// once per outer-loop iteration gives a workload the small-but-nonzero
/// baseline ITLB miss rate the paper's Table II shows (tens of thousands
/// of misses over a run), against which the low-cap blow-up is measured.
pub struct ColdCallPool {
    layout: CodeLayout,
}

impl ColdCallPool {
    /// `n_pages` should exceed the full ITLB entry count (128 on the
    /// paper's platform) so even the unthrottled machine misses here.
    pub fn new(m: &mut Machine, n_pages: usize) -> Self {
        ColdCallPool { layout: CodeLayout::new(m, n_pages, 6) }
    }

    /// One cold excursion.
    #[inline]
    pub fn call_next(&mut self, m: &mut Machine) {
        self.layout.call_next(m);
    }
}

/// Pure ALU work: `iters` blocks of dependent arithmetic.
pub struct AluBurst {
    pub iters: u64,
}

impl Workload for AluBurst {
    fn name(&self) -> &'static str {
        "ALU Burst"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        let block = m.code_block(128, 32);
        let mut acc = 1u64;
        for i in 0..self.iters {
            m.exec_block(&block);
            acc = acc.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(7) ^ i;
            m.branch(&block, i + 1 < self.iters);
        }
        WorkloadOutput { checksum: acc as f64, quality: 1.0, items: self.iters }
    }
}

/// STREAM-style triad `a[i] = b[i] + s*c[i]` over arrays of `elems` f32s.
pub struct StreamTriad {
    pub elems: u64,
    pub passes: u32,
}

impl Workload for StreamTriad {
    fn name(&self) -> &'static str {
        "Stream Triad"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        let bytes = self.elems * 4;
        let a = m.alloc(bytes);
        let b = m.alloc(bytes);
        let c = m.alloc(bytes);
        let block = m.code_block(64, 6);
        let mut host_a = vec![0f32; self.elems as usize];
        let host_b: Vec<f32> = (0..self.elems).map(|i| i as f32).collect();
        let host_c: Vec<f32> = (0..self.elems).map(|i| (i as f32).sin()).collect();
        for _ in 0..self.passes {
            for i in 0..self.elems {
                m.exec_block(&block);
                m.load(b.elem(i, 4));
                m.load(c.elem(i, 4));
                m.store(a.elem(i, 4));
                host_a[i as usize] = host_b[i as usize] + 3.0 * host_c[i as usize];
            }
        }
        let checksum = host_a.iter().step_by(97).map(|&x| x as f64).sum();
        WorkloadOutput { checksum, quality: 1.0, items: self.elems * self.passes as u64 }
    }
}

/// A pointer chase through a shuffled permutation: every access is a
/// serially dependent cache/DRAM round trip.
pub struct PointerChase {
    pub elems: u64,
    pub hops: u64,
    pub seed: u64,
}

impl Workload for PointerChase {
    fn name(&self) -> &'static str {
        "Pointer Chase"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        let n = self.elems as usize;
        let region = m.alloc(self.elems * 8);
        // Sattolo's algorithm: one cycle through all elements.
        let mut next: Vec<u32> = (0..n as u32).collect();
        let mut x = self.seed | 1;
        let mut rng = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in (1..n).rev() {
            let j = (rng() % i as u64) as usize;
            next.swap(i, j);
        }
        let block = m.code_block(48, 4);
        let mut cur = 0u32;
        for _ in 0..self.hops {
            m.exec_block(&block);
            m.load_serial(region.elem(cur as u64, 8));
            cur = next[cur as usize];
        }
        WorkloadOutput { checksum: cur as f64, quality: 1.0, items: self.hops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    fn m() -> Machine {
        Machine::new(MachineConfig::tiny(3))
    }

    #[test]
    fn code_layout_spreads_functions_across_pages() {
        let mut m = m();
        let layout = CodeLayout::new(&mut m, 8, 12);
        let pages: std::collections::HashSet<u64> =
            (0..8).map(|i| layout.funcs[i].addr().vpn()).collect();
        assert_eq!(pages.len(), 8, "each function on its own page");
    }

    #[test]
    fn code_layout_cycles_round_robin() {
        let mut mach = m();
        let mut layout = CodeLayout::new(&mut mach, 3, 8);
        for _ in 0..7 {
            layout.call_next(&mut mach);
        }
        assert_eq!(layout.cursor, 7 % 3);
        let s = mach.finish_run();
        assert_eq!(s.counters.instructions_committed, 7 * 8);
    }

    #[test]
    fn alu_burst_is_compute_bound() {
        let mut mach = m();
        let out = AluBurst { iters: 5_000 }.run(&mut mach);
        assert_eq!(out.items, 5_000);
        let s = mach.finish_run();
        // Practically no DRAM traffic.
        assert!(s.mem.dram_reads < 100, "{}", s.mem.dram_reads);
    }

    #[test]
    fn stream_triad_produces_correct_host_result_and_streams() {
        let mut mach = m();
        let out = StreamTriad { elems: 20_000, passes: 1 }.run(&mut mach);
        // a[0] = 0 + 3*sin(0) = 0; checksum is a deterministic sum.
        let expect: f64 =
            (0..20_000u64).step_by(97).map(|i| (i as f32 + 3.0 * (i as f32).sin()) as f64).sum();
        assert!((out.checksum - expect).abs() < 1e-3);
        let s = mach.finish_run();
        assert!(s.mem.dram_reads > 1000, "tiny caches force streaming");
    }

    #[test]
    fn pointer_chase_visits_the_whole_cycle() {
        let mut mach = m();
        let n = 512;
        let out = PointerChase { elems: n, hops: n, seed: 9 }.run(&mut mach);
        // Sattolo's produces a single n-cycle: after n hops we are back.
        assert_eq!(out.checksum, 0.0);
        let s = mach.finish_run();
        assert_eq!(s.counters.loads, n);
    }
}
