//! Stereo matching via simulated annealing on the "three-layer wedding
//! cake" scene.
//!
//! After Shires, *Exploiting Parallelism in a Monte Carlo Image-Matching
//! Algorithm* (the paper's reference \[5\]): disparity estimation is cast as
//! an energy minimization solved by simulated annealing. The energy of a
//! disparity field `D` is
//!
//! ```text
//! E(D) = Σ_p |L(p) − R(p − D(p))|          (data term, patch SAD)
//!      + λ Σ_{p,q neighbours} |D(p) − D(q)| (smoothness term)
//! ```
//!
//! Each sweep proposes per-pixel disparity moves, accepting uphill moves
//! with probability `exp(−ΔE/T)` under a geometric cooling schedule.
//!
//! The input is synthesized exactly as the paper names it: a three-layer
//! wedding cake — three stacked plateaus of increasing disparity on a
//! ground plane — textured with deterministic noise so matching is
//! well-posed. Ground truth is known, so the result is verifiable.
//!
//! Memory behaviour (the paper's §IV-B contrast with SIRE/RSM): the whole
//! working set (left, right, disparity, cached data-cost) is sized to fit
//! the full 20 MiB L3 but *not* the way-gated one — which is why Table II
//! shows this application's L2/L3 misses exploding at the 125/120 W caps
//! while SIRE/RSM's stay flat.

use capsim_node::Machine;

use crate::kernels::{CodeLayout, ColdCallPool};
use crate::workload::{Workload, WorkloadOutput};

/// Configuration of one stereo-matching run.
#[derive(Clone, Debug)]
pub struct StereoMatching {
    pub width: usize,
    pub height: usize,
    /// Maximum disparity (wedding-cake top layer).
    pub max_disparity: u32,
    /// Annealing sweeps over the image.
    pub sweeps: usize,
    /// Smoothness weight λ.
    pub lambda: f32,
    /// Initial temperature (geometric cooling to ~1 % of it).
    pub t0: f32,
    pub seed: u64,
}

impl StereoMatching {
    /// Table II / Figure 2 scale: the working set (4 image-sized f32
    /// arrays ≈ 16 MiB) is L3-resident at 20 ways, thrashing at ≤8.
    pub fn paper_scale(seed: u64) -> Self {
        StereoMatching {
            // Wide rows: the 3-row matching window (~150 KiB of left,
            // right, cost and disparity rows) is resident in the full
            // 8-way 256 KiB L2 but thrashes the 2-way gated one — the L2
            // blow-up of Table II rows A8/A9.
            width: 4096,
            height: 256,
            max_disparity: 12,
            sweeps: 3,
            lambda: 2.0,
            t0: 4.0,
            seed,
        }
    }

    /// Small instance for tests.
    pub fn test_scale(seed: u64) -> Self {
        StereoMatching {
            width: 96,
            height: 72,
            max_disparity: 6,
            sweeps: 10,
            lambda: 2.0,
            t0: 4.0,
            seed,
        }
    }

    /// Simulated footprint: left, right, cost (f32) + disparity (u8).
    pub fn footprint_bytes(&self) -> u64 {
        (self.width * self.height) as u64 * (4 + 4 + 4 + 1)
    }

    /// The three-layer wedding cake: ground plane plus three stacked
    /// plateaus of increasing disparity.
    pub fn ground_truth(&self, x: usize, y: usize) -> u32 {
        let (w, h) = (self.width as f64, self.height as f64);
        let (fx, fy) = (x as f64 / w, y as f64 / h);
        let d = self.max_disparity as f64;
        let layer =
            |inset: f64| (fx > inset && fx < 1.0 - inset && fy > inset && fy < 1.0 - inset) as u32;
        // Ground (d/4) + three layers up to max_disparity.
        let steps = layer(0.15) + layer(0.27) + layer(0.39);
        (d / 4.0 + steps as f64 * (d - d / 4.0) / 3.0).round() as u32
    }
}

/// Host-side state for one run.
struct Field {
    w: usize,
    h: usize,
    left: Vec<f32>,
    right: Vec<f32>,
    disp: Vec<u8>,
    /// Cached per-pixel data cost for the current disparity.
    cost: Vec<f32>,
}

impl Field {
    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.w + x
    }
}

impl Workload for StereoMatching {
    fn name(&self) -> &'static str {
        "Stereo Matching"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        let (w, h) = (self.width, self.height);
        let dmax = self.max_disparity;
        let mut x_rng = self.seed | 1;
        let mut rng = move || {
            x_rng ^= x_rng << 13;
            x_rng ^= x_rng >> 7;
            x_rng ^= x_rng << 17;
            x_rng
        };

        // --- Synthesize the scene. ----------------------------------------
        // Texture the left image with deterministic band-limited noise,
        // then shift by the ground-truth disparity to form the right image.
        let mut left = vec![0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                let n = ((x as f32 * 12.9898 + y as f32 * 78.233).sin() * 43758.547).fract();
                let bands = ((x as f32) * 0.37).sin() + ((y as f32) * 0.23).cos();
                left[y * w + x] = n * 0.6 + bands * 0.4;
            }
        }
        let mut right = vec![0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                let d = self.ground_truth(x, y) as usize;
                let sx = x.saturating_sub(d);
                right[y * w + sx] = left[y * w + x];
            }
        }
        let mut f = Field {
            w,
            h,
            left,
            right,
            disp: (0..w * h).map(|_| (rng() % (dmax as u64 + 1)) as u8).collect(),
            cost: vec![0.0; w * h],
        };

        // --- Simulated address space. --------------------------------------
        let left_r = m.alloc((w * h * 4) as u64);
        let right_r = m.alloc((w * h * 4) as u64);
        let disp_r = m.alloc((w * h) as u64);
        let cost_r = m.alloc((w * h * 4) as u64);
        let prop_block = m.code_block(128, 26);
        let accept_block = m.code_block(64, 9);
        let mut libs = CodeLayout::new(m, 40, 8);
        let mut cold = ColdCallPool::new(m, 192);

        // Patch SAD data cost at (x, y) for disparity d, charging the
        // machine for the patch loads.
        let patch = 1isize; // 3x3 patch
        let data_cost = |m: &mut Machine, f: &Field, x: usize, y: usize, d: u32| -> f32 {
            let mut sad = 0f32;
            for dy in -patch..=patch {
                for dx in -patch..=patch {
                    let yy = (y as isize + dy).clamp(0, f.h as isize - 1) as usize;
                    let xx = (x as isize + dx).clamp(0, f.w as isize - 1) as usize;
                    let sx = xx.saturating_sub(d as usize);
                    m.load(left_r.elem(f.idx(xx, yy) as u64, 4));
                    m.load(right_r.elem(f.idx(sx, yy) as u64, 4));
                    sad += (f.left[f.idx(xx, yy)] - f.right[f.idx(sx, yy)]).abs();
                }
            }
            sad
        };

        // Initialize the cached costs (one streaming pass).
        for y in 0..h {
            for x in 0..w {
                let pix = f.idx(x, y);
                let d = f.disp[pix] as u32;
                let c = data_cost(m, &f, x, y, d);
                f.cost[pix] = c;
                m.store(cost_r.elem(pix as u64, 4));
                m.branch(&prop_block, x + 1 < w);
            }
        }

        // --- Annealing sweeps. ----------------------------------------------
        let total_sweeps = self.sweeps.max(1);
        let mut accepted = 0u64;
        for sweep in 0..total_sweeps {
            let t = self.t0
                * (0.01f32).powf(sweep as f32 / (total_sweeps.saturating_sub(1).max(1)) as f32);
            for y in 0..h {
                // Once per row: an excursion into cold library code.
                cold.call_next(m);
                for x in 0..w {
                    let pix = f.idx(x, y);
                    m.exec_block(&prop_block);
                    let d_old = f.disp[pix] as u32;
                    // Propose a local move (±1) or a random jump.
                    let r = rng();
                    let d_new = if r & 0x7 == 0 {
                        (r >> 8) as u32 % (dmax + 1)
                    } else if r & 1 == 0 {
                        d_old.saturating_sub(1)
                    } else {
                        (d_old + 1).min(dmax)
                    };
                    if d_new == d_old {
                        continue;
                    }
                    // ΔE = Δdata + λ·Δsmoothness (4-neighbourhood).
                    m.load(cost_r.elem(pix as u64, 4));
                    let c_old = f.cost[pix];
                    let c_new = data_cost(m, &f, x, y, d_new);
                    let mut smooth_old = 0f32;
                    let mut smooth_new = 0f32;
                    for (nx, ny) in
                        [(x.wrapping_sub(1), y), (x + 1, y), (x, y.wrapping_sub(1)), (x, y + 1)]
                    {
                        if nx < w && ny < h {
                            m.load(disp_r.elem(f.idx(nx, ny) as u64, 1));
                            let dn = f.disp[f.idx(nx, ny)] as f32;
                            smooth_old += (d_old as f32 - dn).abs();
                            smooth_new += (d_new as f32 - dn).abs();
                        }
                    }
                    let de = (c_new - c_old) + self.lambda * (smooth_new - smooth_old);
                    m.exec_block(&accept_block);
                    let accept = de < 0.0 || {
                        let u = (rng() % (1 << 24)) as f32 / (1 << 24) as f32;
                        u < (-de / t.max(1e-6)).exp()
                    };
                    m.branch(&accept_block, accept);
                    if accept {
                        accepted += 1;
                        f.disp[pix] = d_new as u8;
                        f.cost[pix] = c_new;
                        m.store(disp_r.elem(pix as u64, 1));
                        m.store(cost_r.elem(pix as u64, 4));
                    }
                    // Scattered helper call (ITLB footprint).
                    if pix & 0x7 == 0 {
                        libs.call_next(m);
                    }
                }
            }
        }

        // --- Verify against ground truth. ------------------------------------
        let mut abs_err = 0f64;
        for y in 0..h {
            for x in 0..w {
                abs_err += (f.disp[f.idx(x, y)] as f64 - self.ground_truth(x, y) as f64).abs();
            }
        }
        let mae = abs_err / (w * h) as f64;
        let checksum: f64 = f.disp.iter().step_by(113).map(|&d| d as f64).sum();
        WorkloadOutput {
            checksum,
            // Quality: 1 / (1 + mean-absolute-disparity-error), plus a
            // pinch of the acceptance activity for diagnostics.
            quality: 1.0 / (1.0 + mae),
            items: accepted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    #[test]
    fn annealing_recovers_the_wedding_cake() {
        let mut m = Machine::new(MachineConfig::tiny(4));
        let mut app = StereoMatching::test_scale(4);
        let out = app.run(&mut m);
        let mae = 1.0 / out.quality - 1.0;
        // Random init would have MAE ≈ dmax/3 ≈ 2; annealing must do much
        // better on a textured synthetic scene.
        assert!(mae < 1.0, "mean abs disparity error {mae}");
        assert!(out.items > 0, "moves were accepted");
    }

    #[test]
    fn more_sweeps_do_not_hurt() {
        let run = |sweeps| {
            let mut m = Machine::new(MachineConfig::tiny(6));
            let mut app = StereoMatching::test_scale(9);
            app.sweeps = sweeps;
            app.run(&mut m).quality
        };
        let short = run(2);
        let long = run(12);
        assert!(long >= short * 0.9, "long {long} vs short {short}");
    }

    #[test]
    fn ground_truth_has_three_layers_plus_ground() {
        let app = StereoMatching::paper_scale(1);
        let mut levels: Vec<u32> = (0..app.height)
            .flat_map(|y| (0..app.width).map(move |x| (x, y)))
            .map(|(x, y)| app.ground_truth(x, y))
            .collect();
        levels.sort_unstable();
        levels.dedup();
        assert_eq!(levels.len(), 4, "ground + 3 cake layers: {levels:?}");
        assert_eq!(*levels.last().unwrap(), app.max_disparity);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut m = Machine::new(MachineConfig::tiny(2));
            StereoMatching::test_scale(seed).run(&mut m).checksum
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn cache_resident_profile_thrashes_under_way_gating() {
        // The inverse of the SIRE test: this working set fits the tiny
        // machine's full L3 but not the gated one.
        let run = |l3_ways: u32| {
            let mut cfg = MachineConfig::tiny(8);
            // Size the tiny L3 so the test working set is resident at
            // full ways and thrashing at 2.
            cfg.hierarchy.l3.size_bytes = 512 * 1024;
            cfg.hierarchy.l3.ways = 16;
            let mut m = Machine::new(cfg);
            let mut r = capsim_mem::MemReconfig::full();
            r.l3_ways = l3_ways;
            m.apply_mem_reconfig(r);
            let mut app = StereoMatching::test_scale(8);
            app.sweeps = 4;
            app.run(&mut m);
            m.finish_run().mem.l3_misses
        };
        let full = run(16);
        let gated = run(2);
        assert!(
            gated as f64 > full as f64 * 1.5,
            "gating must inflate L3 misses: {full} -> {gated}"
        );
    }

    #[test]
    fn paper_scale_fits_l3_but_not_gated_l3() {
        let app = StereoMatching::paper_scale(1);
        let fp = app.footprint_bytes();
        assert!(fp < 20 * 1024 * 1024, "resident at full L3");
        assert!(fp > 4 * 1024 * 1024, "thrashes the 4-way gated L3");
    }
}
