//! The Hennessy–Patterson stride microbenchmark (paper reference \[6\]).
//!
//! "The code includes a nested loop that reads and writes memory at
//! different strides and cache sizes. The results … can be used to
//! identify the configuration of the memory hierarchy … as well as the
//! access times of the various levels." (§III)
//!
//! For every array size and stride the benchmark performs serially
//! dependent accesses across the array and reports the average simulated
//! nanoseconds per access — Figure 3 without a cap, Figure 4 under the
//! 120 W cap. All accesses use [`Machine::load_serial`], whose full
//! hierarchy latency lands on the critical path, exactly what the paper's
//! code measures.

use capsim_node::{Machine, Region};

use crate::workload::{Workload, WorkloadOutput};

/// One cell of the memory mountain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MountainPoint {
    pub size_bytes: u64,
    pub stride_bytes: u64,
    /// Average simulated nanoseconds per access.
    pub avg_ns: f64,
}

/// The sweep configuration.
#[derive(Clone, Debug)]
pub struct StrideBench {
    /// Array sizes to test (paper: 4 KiB … 64 MiB).
    pub sizes: Vec<u64>,
    /// Strides to test (paper: 8 B … 32 MiB).
    pub strides: Vec<u64>,
    /// Cap on accesses per (size, stride) cell so huge cells stay
    /// tractable; the window still exceeds the L3 for large arrays.
    pub max_accesses_per_cell: u64,
    /// Collected results (filled by `run`).
    pub results: Vec<MountainPoint>,
}

impl StrideBench {
    /// The paper's Figure 3/4 sweep: sizes 4 KiB–64 MiB, strides 8 B–32 MiB.
    pub fn paper_scale() -> Self {
        let sizes = (0..15).map(|i| (4 * 1024u64) << i).collect(); // 4K..64M
        let strides = (0..23).map(|i| 8u64 << i).collect(); // 8B..32M
        StrideBench { sizes, strides, max_accesses_per_cell: 400_000, results: Vec::new() }
    }

    /// A reduced sweep for tests.
    pub fn test_scale() -> Self {
        let sizes = vec![4 * 1024, 64 * 1024, 1024 * 1024];
        let strides = vec![8, 64, 4096];
        StrideBench { sizes, strides, max_accesses_per_cell: 20_000, results: Vec::new() }
    }

    /// Result lookup.
    pub fn point(&self, size: u64, stride: u64) -> Option<&MountainPoint> {
        self.results.iter().find(|p| p.size_bytes == size && p.stride_bytes == stride)
    }

    fn measure_cell(&self, m: &mut Machine, region: &Region, size: u64, stride: u64) -> f64 {
        // Warm pass over the window, then the timed pass — the classic
        // structure of the H&P loop.
        let accesses = (size / stride).max(1).min(self.max_accesses_per_cell);
        m.load_serial_stream(region.base(), size, 0, stride, accesses);
        let mut total_ns = 0.0;
        let mut off = 0u64;
        for _ in 0..accesses {
            total_ns += m.timed_load_serial(region.at(off % size));
            off += stride;
        }
        total_ns / accesses as f64
    }
}

impl Workload for StrideBench {
    fn name(&self) -> &'static str {
        "Stride Microbenchmark"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        let max_size = *self.sizes.iter().max().expect("non-empty sizes");
        let region = m.alloc(max_size);
        self.results.clear();
        for &size in &self.sizes {
            for &stride in &self.strides {
                if stride > size / 2 {
                    continue; // the paper's plots stop at stride = size/2
                }
                let avg_ns = self.measure_cell(m, &region, size, stride);
                self.results.push(MountainPoint { size_bytes: size, stride_bytes: stride, avg_ns });
            }
        }
        let checksum = self.results.iter().map(|p| p.avg_ns).sum();
        WorkloadOutput { checksum, quality: 1.0, items: self.results.len() as u64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    /// Run the paper sweep restricted to the cells the assertions need.
    fn mountain(sizes: Vec<u64>, strides: Vec<u64>) -> StrideBench {
        let mut b =
            StrideBench { sizes, strides, max_accesses_per_cell: 50_000, results: Vec::new() };
        let mut m = Machine::new(MachineConfig::e5_2680(1));
        b.run(&mut m);
        b
    }

    #[test]
    fn l1_resident_array_reads_l1_latency() {
        // 4 KiB array at 64 B stride: 64 lines, resident in L1 after the
        // warm pass → ≈1.5 ns (Figure 3's bottom plateau).
        let b = mountain(vec![4 * 1024], vec![64]);
        let p = b.point(4 * 1024, 64).unwrap();
        assert!((1.2..2.2).contains(&p.avg_ns), "L1 plateau at {} ns", p.avg_ns);
    }

    #[test]
    fn l2_resident_array_reads_l2_latency() {
        // 128 KiB at 64 B stride: misses L1 (32 K), fits L2 (256 K) → ≈3.5 ns.
        let b = mountain(vec![128 * 1024], vec![64]);
        let p = b.point(128 * 1024, 64).unwrap();
        assert!((2.8..5.0).contains(&p.avg_ns), "L2 plateau at {} ns", p.avg_ns);
    }

    #[test]
    fn l3_resident_array_reads_l3_latency() {
        // 4 MiB at 256 B stride (defeats the next-line prefetcher):
        // misses L2, fits L3 (20 M) → ≈8.6 ns.
        let b = mountain(vec![4 * 1024 * 1024], vec![256]);
        let p = b.point(4 * 1024 * 1024, 256).unwrap();
        assert!((7.0..11.0).contains(&p.avg_ns), "L3 plateau at {} ns", p.avg_ns);
    }

    #[test]
    fn next_line_prefetcher_softens_the_sequential_l3_plateau() {
        // At 64 B forward stride the L2 prefetcher hides part of the L3
        // latency, exactly like the real hardware streamers.
        let b = mountain(vec![4 * 1024 * 1024], vec![64, 256]);
        let seq = b.point(4 * 1024 * 1024, 64).unwrap().avg_ns;
        let skip = b.point(4 * 1024 * 1024, 256).unwrap().avg_ns;
        assert!(seq < skip, "prefetch helps streams: {seq} vs {skip}");
    }

    #[test]
    fn dram_sized_array_reads_memory_latency() {
        // 64 MiB at 4 KiB stride: every access misses everything → ≈60 ns.
        let b = mountain(vec![64 * 1024 * 1024], vec![4096]);
        let p = b.point(64 * 1024 * 1024, 4096).unwrap();
        assert!((40.0..90.0).contains(&p.avg_ns), "DRAM at {} ns", p.avg_ns);
    }

    #[test]
    fn sub_line_strides_amortize_misses() {
        // At 8 B stride eight consecutive accesses share a line: the
        // average is far below the full miss latency.
        let b = mountain(vec![8 * 1024 * 1024], vec![8, 64]);
        let fine = b.point(8 * 1024 * 1024, 8).unwrap().avg_ns;
        let coarse = b.point(8 * 1024 * 1024, 64).unwrap().avg_ns;
        assert!(fine < coarse / 2.0, "amortization: {fine} vs {coarse}");
    }

    #[test]
    fn strides_beyond_half_size_are_skipped() {
        let b = mountain(vec![4 * 1024], vec![64, 4 * 1024]);
        assert!(b.point(4 * 1024, 4 * 1024).is_none());
        assert!(b.point(4 * 1024, 64).is_some());
    }
}
