//! Multi-core stereo matching (future-work item 1).
//!
//! The paper's first future-work direction: "explore how multi-core
//! applications are affected by power capping". This variant partitions
//! the image into horizontal stripes, one per core, and interleaves the
//! per-core sweeps in load-balanced rounds (the machine's multi-core
//! timing model assumes balanced partitions; see `capsim-node`).
//!
//! The algorithm is the same annealing as [`crate::stereo`], restricted to
//! independent stripes with a fixed boundary (a standard domain
//! decomposition for Monte-Carlo relaxation): each core proposes moves
//! only for its own rows, reading neighbour disparities across the seam
//! read-only.

use capsim_node::Machine;

use crate::kernels::CodeLayout;
use crate::stereo::StereoMatching;
use crate::workload::{Workload, WorkloadOutput};

/// Parallel stereo: wraps the sequential configuration with a core count.
#[derive(Clone, Debug)]
pub struct ParallelStereo {
    pub inner: StereoMatching,
    /// Number of cores to stripe across (must equal the machine's).
    pub cores: usize,
    /// Rows processed per interleave round per core.
    pub tile_rows: usize,
}

impl ParallelStereo {
    pub fn new(inner: StereoMatching, cores: usize) -> Self {
        ParallelStereo { inner, cores, tile_rows: 4 }
    }
}

impl Workload for ParallelStereo {
    fn name(&self) -> &'static str {
        "Stereo Matching (multi-core)"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        assert_eq!(m.n_cores(), self.cores, "machine must have {} cores", self.cores);
        let (w, h) = (self.inner.width, self.inner.height);
        let dmax = self.inner.max_disparity;
        let mut x_rng = self.inner.seed | 1;
        let mut rng = move || {
            x_rng ^= x_rng << 13;
            x_rng ^= x_rng >> 7;
            x_rng ^= x_rng << 17;
            x_rng
        };

        // Scene synthesis (identical to the sequential version).
        let mut left = vec![0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                let n = ((x as f32 * 12.9898 + y as f32 * 78.233).sin() * 43758.547).fract();
                let bands = ((x as f32) * 0.37).sin() + ((y as f32) * 0.23).cos();
                left[y * w + x] = n * 0.6 + bands * 0.4;
            }
        }
        let mut right = vec![0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                let d = self.inner.ground_truth(x, y) as usize;
                right[y * w + x.saturating_sub(d)] = left[y * w + x];
            }
        }
        let mut disp: Vec<u8> = (0..w * h).map(|_| (rng() % (dmax as u64 + 1)) as u8).collect();

        let left_r = m.alloc((w * h * 4) as u64);
        let right_r = m.alloc((w * h * 4) as u64);
        let disp_r = m.alloc((w * h) as u64);
        let prop_block = m.code_block(128, 26);
        let mut libs = CodeLayout::new(m, 40, 8);

        let stripe = h.div_ceil(self.cores);
        let lambda = self.inner.lambda;
        let idx = |x: usize, y: usize| y * w + x;

        // Charged 3×3 SAD (same cost structure as the sequential app).
        let data_cost =
            |m: &mut Machine, left: &[f32], right: &[f32], x: usize, y: usize, d: u32| -> f32 {
                let mut sad = 0f32;
                for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        let yy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                        let xx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                        let sx = xx.saturating_sub(d as usize);
                        m.load(left_r.elem(idx(xx, yy) as u64, 4));
                        m.load(right_r.elem(idx(sx, yy) as u64, 4));
                        sad += (left[idx(xx, yy)] - right[idx(sx, yy)]).abs();
                    }
                }
                sad
            };

        let total_sweeps = self.inner.sweeps.max(1);
        let mut accepted = 0u64;
        for sweep in 0..total_sweeps {
            let t = self.inner.t0
                * (0.01f32).powf(sweep as f32 / (total_sweeps.saturating_sub(1).max(1)) as f32);
            // Interleave: each round gives every core `tile_rows` rows of
            // its own stripe, keeping the cores in lockstep.
            let rounds = stripe.div_ceil(self.tile_rows);
            for round in 0..rounds {
                for core in 0..self.cores {
                    m.set_active_core(core);
                    let y0 = core * stripe + round * self.tile_rows;
                    let y1 = (y0 + self.tile_rows).min(((core + 1) * stripe).min(h));
                    for y in y0..y1.max(y0) {
                        if y >= h {
                            continue;
                        }
                        for x in 0..w {
                            m.exec_block(&prop_block);
                            let pix = idx(x, y);
                            let d_old = disp[pix] as u32;
                            let r = rng();
                            let d_new = if r & 1 == 0 {
                                d_old.saturating_sub(1)
                            } else {
                                (d_old + 1).min(dmax)
                            };
                            if d_new == d_old {
                                continue;
                            }
                            let c_old = data_cost(m, &left, &right, x, y, d_old);
                            let c_new = data_cost(m, &left, &right, x, y, d_new);
                            let mut sm_old = 0f32;
                            let mut sm_new = 0f32;
                            for (nx, ny) in [
                                (x.wrapping_sub(1), y),
                                (x + 1, y),
                                (x, y.wrapping_sub(1)),
                                (x, y + 1),
                            ] {
                                if nx < w && ny < h {
                                    m.load(disp_r.elem(idx(nx, ny) as u64, 1));
                                    let dn = disp[idx(nx, ny)] as f32;
                                    sm_old += (d_old as f32 - dn).abs();
                                    sm_new += (d_new as f32 - dn).abs();
                                }
                            }
                            let de = (c_new - c_old) + lambda * (sm_new - sm_old);
                            let accept = de < 0.0
                                || ((rng() % (1 << 24)) as f32 / (1 << 24) as f32)
                                    < (-de / t.max(1e-6)).exp();
                            if accept {
                                accepted += 1;
                                disp[pix] = d_new as u8;
                                m.store(disp_r.elem(pix as u64, 1));
                            }
                            if pix & 0x7 == 0 {
                                libs.call_next(m);
                            }
                        }
                    }
                }
            }
        }
        m.set_active_core(0);

        let mut abs_err = 0f64;
        for y in 0..h {
            for x in 0..w {
                abs_err += (disp[idx(x, y)] as f64 - self.inner.ground_truth(x, y) as f64).abs();
            }
        }
        let mae = abs_err / (w * h) as f64;
        let checksum: f64 = disp.iter().step_by(113).map(|&d| d as f64).sum();
        WorkloadOutput { checksum, quality: 1.0 / (1.0 + mae), items: accepted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    fn machine(cores: usize) -> Machine {
        let mut cfg = MachineConfig::tiny(13);
        cfg.n_cores = cores;
        Machine::new(cfg)
    }

    #[test]
    fn parallel_run_improves_disparity_on_all_stripes() {
        let mut m = machine(2);
        let mut app = ParallelStereo::new(StereoMatching::test_scale(13), 2);
        let out = app.run(&mut m);
        let mae = 1.0 / out.quality - 1.0;
        assert!(mae < 1.4, "mae {mae}");
        assert!(out.items > 0);
    }

    #[test]
    fn work_is_balanced_across_cores() {
        let mut m = machine(2);
        let mut app = ParallelStereo::new(StereoMatching::test_scale(21), 2);
        app.run(&mut m);
        let a = m.core_counters(0).instructions_committed as f64;
        let b = m.core_counters(1).instructions_committed as f64;
        assert!((a / b - 1.0).abs() < 0.1, "imbalance {a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "machine must have")]
    fn core_count_mismatch_is_detected() {
        let mut m = machine(1);
        ParallelStereo::new(StereoMatching::test_scale(1), 2).run(&mut m);
    }
}
