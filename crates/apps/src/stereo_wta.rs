//! Deterministic winner-take-all (WTA) block-matching stereo — a
//! comparator for the Monte-Carlo matcher.
//!
//! Shires' report frames simulated annealing against classical
//! correlation matching; this is that classical side: for every pixel,
//! evaluate the 3×3 SAD at every candidate disparity and keep the
//! arg-min. No smoothness term, no randomness — one deterministic sweep
//! whose cost is `pixels × disparities × patch`.
//!
//! In the study it serves two purposes: an accuracy/energy comparator for
//! the annealer at equal inputs, and a second CPU-bound point for the
//! amenability analysis (its memory behaviour is even more regular than
//! the annealer's).

use capsim_node::Machine;

use crate::kernels::{CodeLayout, ColdCallPool};
use crate::stereo::StereoMatching;
use crate::workload::{Workload, WorkloadOutput};

/// WTA matcher over the same wedding-cake scene as [`StereoMatching`].
#[derive(Clone, Debug)]
pub struct StereoWta {
    /// Scene/scale parameters (sweeps/lambda/t0 are ignored).
    pub scene: StereoMatching,
}

impl StereoWta {
    pub fn paper_scale(seed: u64) -> Self {
        StereoWta { scene: StereoMatching::paper_scale(seed) }
    }

    pub fn test_scale(seed: u64) -> Self {
        StereoWta { scene: StereoMatching::test_scale(seed) }
    }
}

impl Workload for StereoWta {
    fn name(&self) -> &'static str {
        "Stereo Matching (WTA baseline)"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        let (w, h) = (self.scene.width, self.scene.height);
        let dmax = self.scene.max_disparity;
        // Scene synthesis identical to the annealer (same seed → same
        // images, so accuracies are directly comparable).
        let mut left = vec![0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                let n = ((x as f32 * 12.9898 + y as f32 * 78.233).sin() * 43758.547).fract();
                let bands = ((x as f32) * 0.37).sin() + ((y as f32) * 0.23).cos();
                left[y * w + x] = n * 0.6 + bands * 0.4;
            }
        }
        let mut right = vec![0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                let d = self.scene.ground_truth(x, y) as usize;
                right[y * w + x.saturating_sub(d)] = left[y * w + x];
            }
        }

        let left_r = m.alloc((w * h * 4) as u64);
        let right_r = m.alloc((w * h * 4) as u64);
        let disp_r = m.alloc((w * h) as u64);
        let inner = m.code_block(96, 18);
        let mut libs = CodeLayout::new(m, 40, 8);
        let mut cold = ColdCallPool::new(m, 192);

        let idx = |x: usize, y: usize| y * w + x;
        let mut disp = vec![0u8; w * h];
        for y in 0..h {
            cold.call_next(m);
            for x in 0..w {
                let mut best = f32::INFINITY;
                let mut best_d = 0u32;
                for d in 0..=dmax {
                    m.exec_block(&inner);
                    let mut sad = 0f32;
                    for dy in -1isize..=1 {
                        let yy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                        for dx in -1isize..=1 {
                            let xx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                            let sx = xx.saturating_sub(d as usize);
                            m.load(left_r.elem(idx(xx, yy) as u64, 4));
                            m.load(right_r.elem(idx(sx, yy) as u64, 4));
                            sad += (left[idx(xx, yy)] - right[idx(sx, yy)]).abs();
                        }
                    }
                    m.branch(&inner, sad < best);
                    if sad < best {
                        best = sad;
                        best_d = d;
                    }
                }
                disp[idx(x, y)] = best_d as u8;
                m.store(disp_r.elem(idx(x, y) as u64, 1));
                if x & 0x7 == 0 {
                    libs.call_next(m);
                }
            }
        }

        let mut abs_err = 0f64;
        for y in 0..h {
            for x in 0..w {
                abs_err += (disp[idx(x, y)] as f64 - self.scene.ground_truth(x, y) as f64).abs();
            }
        }
        let mae = abs_err / (w * h) as f64;
        let checksum: f64 = disp.iter().step_by(113).map(|&d| d as f64).sum();
        WorkloadOutput { checksum, quality: 1.0 / (1.0 + mae), items: (w * h) as u64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    #[test]
    fn wta_recovers_the_wedding_cake_reasonably() {
        let mut m = Machine::new(MachineConfig::tiny(3));
        let out = StereoWta::test_scale(3).run(&mut m);
        let mae = 1.0 / out.quality - 1.0;
        assert!(mae < 1.2, "WTA mae {mae}");
    }

    #[test]
    fn wta_is_deterministic_and_seed_invariant_given_same_scene() {
        // WTA has no RNG of its own; same scene → same result even for
        // different "seeds" of the same scale (scene depends on seed only
        // through nothing here — texture is coordinate-hashed).
        let run = |seed| {
            let mut m = Machine::new(MachineConfig::tiny(1));
            StereoWta::test_scale(seed).run(&mut m).checksum
        };
        assert_eq!(run(4), run(4));
        assert_eq!(run(4), run(5), "scene texture is seed-free");
    }

    #[test]
    fn wta_costs_more_loads_per_pixel_than_annealing_but_no_acceptance_noise() {
        let mut m = Machine::new(MachineConfig::tiny(6));
        StereoWta::test_scale(6).run(&mut m);
        let s = m.finish_run();
        let px = (96 * 72) as u64;
        // 7 disparities × 18 patch loads ≈ 126 loads/pixel.
        assert!(s.counters.loads > px * 100, "loads {}", s.counters.loads);
    }
}
