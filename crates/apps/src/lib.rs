//! `capsim-apps` — the workloads of the study, implemented for real.
//!
//! The paper evaluates two applications "executed on field deployable
//! computer systems":
//!
//! * **SIRE/RSM** ([`sar`]) — ultra-wideband impulse SAR image formation
//!   (backprojection) with recursive sidelobe minimization, after Nguyen's
//!   ARL SIRE radar reports. It streams image-sized arrays that exceed the
//!   L3, which is why its L2/L3 miss counts are insensitive to cache-way
//!   gating in Table II.
//! * **Stereo Matching** ([`stereo`]) — Monte-Carlo image matching via
//!   simulated annealing on the paper's named input, a "three-layer
//!   wedding cake" scene, after Shires' ARL report. Its working set is
//!   cache-resident at full capacity and thrashes once ways are gated —
//!   the Table II L2/L3 blow-up at 125/120 W.
//!
//! Both run their *actual algorithms* on synthetic data (the ARL field
//! data is not public — see DESIGN.md §5) and mirror every load/store
//! through the simulated machine, so the counters the study reports come
//! from the same execution that produces a verifiable image/disparity map.
//!
//! Also here: the Hennessy–Patterson **stride microbenchmark** ([`stride`])
//! behind Figures 3/4, an **unpredictable phased workload** ([`phased`])
//! for future-work item 3, a **multi-core stereo** ([`stereo_par`]) for
//! future-work item 1, and small calibration [`kernels`].

pub mod cfar;
pub mod kernels;
pub mod phased;
pub mod pulse;
pub mod sar;
pub mod stereo;
pub mod stereo_par;
pub mod stereo_wta;
pub mod stride;
pub mod workload;

pub use cfar::CfarDetect;
pub use pulse::PulseCompression;
pub use sar::SireRsm;
pub use stereo::StereoMatching;
pub use stereo_par::ParallelStereo;
pub use stereo_wta::StereoWta;
pub use stride::{MountainPoint, StrideBench};
pub use workload::{Workload, WorkloadOutput};
