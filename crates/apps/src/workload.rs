//! The workload abstraction the study runner drives.

use capsim_node::Machine;

/// Result of one workload execution: enough to verify the computation
/// actually happened and was correct.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkloadOutput {
    /// A content checksum of the result (image, disparity map, …);
    /// deterministic for a given seed and scale.
    pub checksum: f64,
    /// Domain-specific quality metric (peak-to-background ratio for SAR,
    /// disparity accuracy for stereo); higher is better.
    pub quality: f64,
    /// Number of output items produced (pixels, samples, …).
    pub items: u64,
}

/// A program that can run on the simulated machine.
pub trait Workload {
    /// Short name used in tables ("SIRE/RSM", "Stereo Matching").
    fn name(&self) -> &'static str;

    /// Execute on `m`, mirroring all memory traffic through it. Must be
    /// deterministic given the workload's own seed/scale configuration.
    fn run(&mut self, m: &mut Machine) -> WorkloadOutput;
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    struct Nop;

    impl Workload for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }

        fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
            m.compute(10);
            WorkloadOutput { checksum: 1.0, quality: 1.0, items: 0 }
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut w: Box<dyn Workload> = Box::new(Nop);
        let mut m = Machine::new(MachineConfig::tiny(1));
        let out = w.run(&mut m);
        assert_eq!(out.checksum, 1.0);
        assert_eq!(w.name(), "nop");
    }
}
