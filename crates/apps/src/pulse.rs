//! FFT pulse compression — the radar front-end stage.
//!
//! Before backprojection, a real SIRE processing chain compresses each
//! received pulse against the transmitted waveform: FFT the return,
//! multiply by the conjugate reference spectrum, inverse-FFT. This
//! workload implements that stage for real (iterative radix-2
//! Cooley–Tukey, verified against a naive DFT in tests) on the simulated
//! machine.
//!
//! Its memory profile is distinctive and cache-classic: bit-reversal
//! permutation (pseudo-random within each pulse) followed by log₂ N
//! butterfly passes whose strides double every pass — an access pattern
//! that exercises every cache level in turn, sitting between the stencil
//! (CFAR) and the streaming image former in the amenability spectrum.

use capsim_node::Machine;

use crate::kernels::{CodeLayout, ColdCallPool};
use crate::workload::{Workload, WorkloadOutput};

/// Batch pulse compression.
#[derive(Clone, Debug)]
pub struct PulseCompression {
    /// Number of pulses (rows) to compress.
    pub pulses: usize,
    /// Samples per pulse; must be a power of two.
    pub samples: usize,
    pub seed: u64,
}

impl PulseCompression {
    pub fn paper_scale(seed: u64) -> Self {
        PulseCompression { pulses: 256, samples: 4096, seed }
    }

    pub fn test_scale(seed: u64) -> Self {
        PulseCompression { pulses: 12, samples: 256, seed }
    }
}

/// In-place iterative radix-2 FFT over interleaved (re, im) pairs,
/// mirroring every touched element through the machine. `inverse`
/// selects the IFFT (without the 1/N scale; callers fold it in).
fn fft_charged(
    m: &mut Machine,
    region: capsim_node::Region,
    row_off: u64,
    data: &mut [(f32, f32)],
    inverse: bool,
    fly_block: &capsim_node::CodeBlock,
) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            m.load(region.at(row_off + i as u64 * 8));
            m.load(region.at(row_off + j as u64 * 8));
            data.swap(i, j);
            m.store(region.at(row_off + i as u64 * 8));
            m.store(region.at(row_off + j as u64 * 8));
        }
    }
    // Butterfly passes with doubling stride.
    let sign = if inverse { 1.0f64 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos() as f32, ang.sin() as f32);
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f32, 0.0f32);
            for k in 0..len / 2 {
                let a = i + k;
                let b = i + k + len / 2;
                m.exec_block(fly_block);
                m.load(region.at(row_off + a as u64 * 8));
                m.load(region.at(row_off + b as u64 * 8));
                let (ar, ai) = data[a];
                let (br, bi) = data[b];
                let tr = br * cr - bi * ci;
                let ti = br * ci + bi * cr;
                data[a] = (ar + tr, ai + ti);
                data[b] = (ar - tr, ai - ti);
                m.store(region.at(row_off + a as u64 * 8));
                m.store(region.at(row_off + b as u64 * 8));
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

impl Workload for PulseCompression {
    fn name(&self) -> &'static str {
        "Pulse Compression (FFT)"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        let (np, n) = (self.pulses, self.samples);
        assert!(n.is_power_of_two(), "samples must be a power of two");
        let mut rng = {
            let mut x = self.seed | 1;
            move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            }
        };
        // The transmitted chirp and its reference spectrum.
        let chirp: Vec<(f32, f32)> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                let phase = std::f64::consts::PI * 40.0 * t * t; // LFM chirp
                if i < n / 8 {
                    (phase.cos() as f32, phase.sin() as f32)
                } else {
                    (0.0, 0.0)
                }
            })
            .collect();

        let data_r = m.alloc((np * n * 8) as u64);
        let ref_r = m.alloc((n * 8) as u64);
        let fly_block = m.code_block(96, 12);
        let mut libs = CodeLayout::new(m, 24, 8);
        let mut cold = ColdCallPool::new(m, 160);

        // Reference spectrum: FFT of the chirp (charged once).
        let mut ref_spec = chirp.clone();
        fft_charged(m, ref_r, 0, &mut ref_spec, false, &fly_block);

        // Each pulse: delayed chirp + noise, planted at a known delay.
        let mut peak_score = 0.0f64;
        let mut checksum = 0.0f64;
        for p in 0..np {
            cold.call_next(m);
            let delay = (rng() % (n as u64 / 2)) as usize + n / 8;
            let mut pulse: Vec<(f32, f32)> = (0..n)
                .map(|i| {
                    let noise = ((rng() % 2000) as f32 / 1000.0 - 1.0) * 0.05;
                    let sig =
                        if i >= delay && i - delay < n / 8 { chirp[i - delay] } else { (0.0, 0.0) };
                    (sig.0 + noise, sig.1)
                })
                .collect();
            let row = (p * n * 8) as u64;
            // Forward FFT, conjugate-multiply by the reference, inverse FFT.
            fft_charged(m, data_r, row, &mut pulse, false, &fly_block);
            for i in 0..n {
                m.exec_block(&fly_block);
                m.load(data_r.at(row + i as u64 * 8));
                m.load(ref_r.at(i as u64 * 8));
                let (ar, ai) = pulse[i];
                let (br, bi) = ref_spec[i];
                // a * conj(b)
                pulse[i] = (ar * br + ai * bi, ai * br - ar * bi);
                m.store(data_r.at(row + i as u64 * 8));
            }
            fft_charged(m, data_r, row, &mut pulse, true, &fly_block);
            libs.call_next(m);
            // The compressed pulse must peak at the planted delay.
            let mag = |c: (f32, f32)| (c.0 as f64).hypot(c.1 as f64);
            let (best_i, best) = pulse
                .iter()
                .enumerate()
                .map(|(i, &c)| (i, mag(c)))
                .fold((0, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc });
            let mean: f64 = pulse.iter().map(|&c| mag(c)).sum::<f64>() / n as f64;
            if best_i.abs_diff(delay) <= 1 && mean > 0.0 {
                peak_score += best / mean;
            }
            checksum += best;
        }
        WorkloadOutput { checksum, quality: peak_score / np as f64, items: (np * n) as u64 }
    }
}

/// Naive DFT used by tests to verify the charged FFT.
#[cfg(test)]
fn dft(x: &[(f32, f32)], inverse: bool) -> Vec<(f32, f32)> {
    let n = x.len();
    let sign = if inverse { 1.0f64 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for (j, &(xr, xi)) in x.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                re += xr as f64 * c - xi as f64 * s;
                im += xr as f64 * s + xi as f64 * c;
            }
            (re as f32, im as f32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    #[test]
    fn charged_fft_matches_naive_dft() {
        let mut m = Machine::new(MachineConfig::tiny(3));
        let region = m.alloc(64 * 8);
        let block = m.code_block(96, 12);
        let mut x: Vec<(f32, f32)> = (0..64)
            .map(|i| (((i * 7 + 3) % 11) as f32 - 5.0, ((i * 13) % 17) as f32 / 4.0))
            .collect();
        let expect = dft(&x, false);
        fft_charged(&mut m, region, 0, &mut x, false, &block);
        for (got, want) in x.iter().zip(&expect) {
            assert!((got.0 - want.0).abs() < 1e-2, "{got:?} vs {want:?}");
            assert!((got.1 - want.1).abs() < 1e-2);
        }
    }

    #[test]
    fn inverse_fft_roundtrips() {
        let mut m = Machine::new(MachineConfig::tiny(4));
        let region = m.alloc(128 * 8);
        let block = m.code_block(96, 12);
        let orig: Vec<(f32, f32)> = (0..128).map(|i| ((i as f32).sin(), 0.0)).collect();
        let mut x = orig.clone();
        fft_charged(&mut m, region, 0, &mut x, false, &block);
        fft_charged(&mut m, region, 0, &mut x, true, &block);
        for (got, want) in x.iter().zip(&orig) {
            assert!((got.0 / 128.0 - want.0).abs() < 1e-3);
        }
    }

    #[test]
    fn compression_finds_the_planted_delays() {
        let mut m = Machine::new(MachineConfig::tiny(5));
        let out = PulseCompression::test_scale(5).run(&mut m);
        // quality = mean peak-to-mean ratio over pulses whose peak landed
        // at the planted delay; strong compression scores well above 5.
        assert!(out.quality > 5.0, "compression gain {}", out.quality);
    }

    #[test]
    fn butterfly_strides_touch_all_cache_levels() {
        let mut m = Machine::new(MachineConfig::e5_2680(6));
        PulseCompression { pulses: 4, samples: 4096, seed: 6 }.run(&mut m);
        let s = m.finish_run();
        assert!(s.counters.loads > 100_000);
        // The 32 KiB rows exceed L1: real L1 misses, mostly L2 hits.
        assert!(s.mem.l1d_misses > 1_000);
        let l2_rate = s.mem.l2_misses as f64 / s.mem.l2_accesses.max(1) as f64;
        assert!(l2_rate < 0.6, "rows are L2-resident: {l2_rate}");
    }
}
