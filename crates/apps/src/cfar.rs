//! CFAR target detection over a formed SAR image.
//!
//! The paper's motivation (§I) is battlefield payload processing with
//! soft real-time deadlines — and a fielded SIRE radar does not stop at
//! image formation: the formed image feeds a **constant false-alarm rate
//! (CFAR)** detector that flags target candidates against local clutter.
//! This workload implements the classic cell-averaging CFAR with a guard
//! band: a pixel is declared a detection when its magnitude exceeds
//! `threshold_factor ×` the mean of its training ring.
//!
//! As a memory profile it complements the study's pair: a windowed 2-D
//! stencil that streams the image once — bounded reuse, no annealing
//! randomness — sitting between the cache-resident stereo matcher and the
//! multi-pass streaming image former.

use capsim_node::Machine;

use crate::kernels::{CodeLayout, ColdCallPool};
use crate::sar::SireRsm;
use crate::workload::{Workload, WorkloadOutput};

/// Cell-averaging CFAR over a synthetic SIRE/RSM image.
#[derive(Clone, Debug)]
pub struct CfarDetect {
    /// Scene parameters (the image is formed by [`SireRsm`] internally,
    /// without machine charging — CFAR is the phase under study).
    pub scene: SireRsm,
    /// Half-width of the training window (ring outer radius).
    pub train_radius: usize,
    /// Half-width of the guard window excluded around the cell under test.
    pub guard_radius: usize,
    /// Detection threshold multiplier over mean clutter.
    pub threshold_factor: f32,
}

impl CfarDetect {
    pub fn paper_scale(seed: u64) -> Self {
        CfarDetect {
            scene: SireRsm::paper_scale(seed),
            train_radius: 6,
            guard_radius: 2,
            threshold_factor: 5.0,
        }
    }

    pub fn test_scale(seed: u64) -> Self {
        CfarDetect {
            scene: SireRsm::test_scale(seed),
            train_radius: 4,
            guard_radius: 1,
            threshold_factor: 5.0,
        }
    }
}

impl Workload for CfarDetect {
    fn name(&self) -> &'static str {
        "CFAR Detection"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        let (w, h) = (self.scene.width, self.scene.height);
        // Synthesize the input image directly: background clutter plus
        // point targets, statistically matching a formed RSM image.
        let mut rng = {
            let mut x = self.scene.seed | 1;
            move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            }
        };
        let mut image = vec![0f32; w * h];
        for v in image.iter_mut() {
            *v = 0.02 + (rng() % 1000) as f32 / 1000.0 * 0.05; // clutter
        }
        let mut truth = Vec::new();
        for _ in 0..self.scene.n_scatterers {
            let x = (rng() % (w as u64 - 20)) as usize + 10;
            let y = (rng() % (h as u64 - 20)) as usize + 10;
            truth.push((x, y));
            image[y * w + x] = 2.0 + (rng() % 100) as f32 / 100.0;
            // A focused point spreads slightly.
            image[y * w + x - 1] = 0.8;
            image[y * w + x + 1] = 0.8;
        }

        let image_r = m.alloc((w * h * 4) as u64);
        let det_r = m.alloc((w * h) as u64);
        let cell_block = m.code_block(96, 16);
        let mut libs = CodeLayout::new(m, 32, 8);
        let mut cold = ColdCallPool::new(m, 160);

        let (tr, gr) = (self.train_radius as isize, self.guard_radius as isize);
        let mut detections = Vec::new();
        for y in 0..h {
            cold.call_next(m);
            for x in 0..w {
                m.exec_block(&cell_block);
                // Training ring mean (charged loads over the stencil).
                let mut sum = 0f32;
                let mut count = 0u32;
                for dy in -tr..=tr {
                    for dx in -tr..=tr {
                        if dx.abs() <= gr && dy.abs() <= gr {
                            continue; // guard cells
                        }
                        // Sample the ring sparsely (every other cell), as
                        // fielded implementations do for throughput.
                        if (dx + dy) & 1 != 0 {
                            continue;
                        }
                        let yy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                        let xx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                        m.load(image_r.elem((yy * w + xx) as u64, 4));
                        sum += image[yy * w + xx];
                        count += 1;
                    }
                }
                m.load(image_r.elem((y * w + x) as u64, 4));
                let mean = sum / count.max(1) as f32;
                let hit = image[y * w + x] > self.threshold_factor * mean;
                m.branch(&cell_block, hit);
                if hit {
                    detections.push((x, y));
                    m.store(det_r.elem((y * w + x) as u64, 1));
                }
                if x & 0xf == 0 {
                    libs.call_next(m);
                }
            }
        }

        // Score: every true target must be detected within 1 px; false
        // alarms counted against quality.
        let mut found = 0;
        for &(tx, ty) in &truth {
            if detections.iter().any(|&(x, y)| x.abs_diff(tx) <= 1 && y.abs_diff(ty) <= 1) {
                found += 1;
            }
        }
        let false_alarms = detections.len().saturating_sub(found * 3); // spread cells
        let recall = found as f64 / truth.len().max(1) as f64;
        let fa_rate = false_alarms as f64 / (w * h) as f64;
        WorkloadOutput {
            checksum: detections.iter().map(|&(x, y)| (x + y * w) as f64).sum(),
            quality: recall / (1.0 + 1e4 * fa_rate),
            items: detections.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    #[test]
    fn cfar_finds_all_planted_targets_with_few_false_alarms() {
        let mut m = Machine::new(MachineConfig::tiny(5));
        let out = CfarDetect::test_scale(5).run(&mut m);
        assert!(out.quality > 0.8, "recall/fa score {}", out.quality);
        assert!(out.items >= 3, "detections {}", out.items);
    }

    #[test]
    fn threshold_controls_the_detection_count() {
        let run = |factor: f32| {
            let mut m = Machine::new(MachineConfig::tiny(7));
            let mut c = CfarDetect::test_scale(7);
            c.threshold_factor = factor;
            c.run(&mut m).items
        };
        // A threshold near the clutter level fires on noise; a high one
        // keeps only the planted targets.
        assert!(run(1.2) > run(8.0), "lower threshold, more detections");
    }

    #[test]
    fn stencil_profile_is_single_pass_streaming_with_reuse() {
        let mut m = Machine::new(MachineConfig::e5_2680(9));
        CfarDetect::test_scale(9).run(&mut m);
        let s = m.finish_run();
        // The ring window gives strong L1/L2 reuse: local miss rates stay
        // far below the streaming image former's.
        let l1_rate = s.mem.l1d_misses as f64 / s.mem.l1d_accesses as f64;
        assert!(l1_rate < 0.05, "stencil reuse: L1 miss rate {l1_rate}");
    }
}
