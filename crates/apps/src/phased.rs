//! An unpredictable, phase-alternating workload (future-work item 3).
//!
//! The paper's discussion (§IV-C) argues power capping earns its keep when
//! "the workload is unpredictable in terms of its power consumption". This
//! workload alternates compute-bound bursts, memory-bound bursts and idle
//! gaps with seeded-random durations, so its instantaneous power swings
//! between ~101 W (idle) and ~155 W (hot loop) — the regime where the
//! BMC's dithering actually has something to chase.

use capsim_node::Machine;

use crate::workload::{Workload, WorkloadOutput};

/// Phase types the generator cycles through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    Compute,
    Memory,
    Idle,
}

/// The phased workload.
#[derive(Clone, Debug)]
pub struct PhasedWorkload {
    /// Number of phases to execute.
    pub phases: usize,
    /// Work quantum per phase: iterations for busy phases; idle phases
    /// last `quantum × 12.5 ns`, roughly one busy phase's duration, so
    /// the three phase kinds get comparable wall-time shares.
    pub quantum: u64,
    pub seed: u64,
    /// Phase trace for post-run analysis (filled during `run`).
    pub trace: Vec<Phase>,
}

impl PhasedWorkload {
    pub fn new(phases: usize, quantum: u64, seed: u64) -> Self {
        PhasedWorkload { phases, quantum, seed, trace: Vec::new() }
    }
}

impl Workload for PhasedWorkload {
    fn name(&self) -> &'static str {
        "Phased (unpredictable)"
    }

    fn run(&mut self, m: &mut Machine) -> WorkloadOutput {
        let mut x = self.seed | 1;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let buf = m.alloc(8 << 20); // memory phases stream 8 MiB
        let hot = m.code_block(96, 24);
        self.trace.clear();
        let mut checksum = 0u64;
        for _ in 0..self.phases {
            let r = rng();
            let phase = match r % 3 {
                0 => Phase::Compute,
                1 => Phase::Memory,
                _ => Phase::Idle,
            };
            self.trace.push(phase);
            // Durations vary ×1–×4 so power is genuinely unpredictable.
            let len = self.quantum * (1 + (r >> 8) % 4);
            match phase {
                Phase::Compute => {
                    for i in 0..len {
                        m.exec_block(&hot);
                        checksum = checksum.wrapping_add(i).rotate_left(3);
                        m.branch(&hot, i + 1 < len);
                    }
                }
                Phase::Memory => {
                    // Same offsets as the historical per-access loop:
                    // (start + 64*i) % bytes for i = 1..=len.
                    let start = (r >> 16) % buf.bytes();
                    m.load_stream(buf.base(), buf.bytes(), start + 64, 64, len);
                }
                Phase::Idle => {
                    m.idle(len as f64 * 12.5e-9);
                }
            }
        }
        WorkloadOutput { checksum: checksum as f64, quality: 1.0, items: self.phases as u64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    #[test]
    fn produces_a_mixed_phase_trace() {
        let mut m = Machine::new(MachineConfig::tiny(3));
        let mut w = PhasedWorkload::new(60, 200, 3);
        w.run(&mut m);
        assert_eq!(w.trace.len(), 60);
        let kinds: std::collections::HashSet<_> = w.trace.iter().copied().collect();
        assert_eq!(kinds.len(), 3, "all three phase kinds occur");
    }

    #[test]
    fn power_swings_between_idle_and_busy() {
        let mut m = Machine::new(MachineConfig::e5_2680(5));
        let mut w = PhasedWorkload::new(40, 3000, 5);
        w.run(&mut m);
        let s = m.finish_run();
        assert!(s.min_power_w < 112.0, "idle dips: {}", s.min_power_w);
        assert!(s.max_power_w > 135.0, "busy spikes: {}", s.max_power_w);
    }

    #[test]
    fn deterministic_trace_per_seed() {
        let trace = |seed| {
            let mut m = Machine::new(MachineConfig::tiny(1));
            let mut w = PhasedWorkload::new(30, 100, seed);
            w.run(&mut m);
            w.trace
        };
        assert_eq!(trace(9), trace(9));
        assert_ne!(trace(9), trace(10));
    }
}
