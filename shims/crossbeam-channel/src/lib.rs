//! Offline stand-in for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! capsim uses only unbounded channels with `send` / `recv` / `try_recv` /
//! `recv_timeout`, which `std` provides directly; this shim adapts the
//! names and error types so the IPMI transport code compiles unchanged.

use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on a disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders have been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// All senders have been dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "receive timed out"),
            RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }
}

/// Create an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_reported_on_both_ends() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_reports_timeout_and_data() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(9));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
        t.join().unwrap();
    }
}
