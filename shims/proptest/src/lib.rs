//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace ships
//! a compatible subset of proptest: the [`proptest!`] macro, `Strategy`
//! with ranges / tuples / `prop_map` / [`collection::vec`] / [`prop_oneof!`] /
//! [`strategy::Just`], `any::<T>()` for primitives, and the `prop_assert*`
//! macros. Inputs are drawn from a deterministic splitmix64 stream seeded
//! from the test's module path and name, so failures reproduce exactly
//! across runs. Shrinking is not implemented — a failing case panics with
//! the offending assertion like a plain `#[test]`.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        type Value;

        /// Draw one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discard values failing `pred` (rejection sampling, bounded).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, pred, reason }
        }

        /// Erase the concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) pred: F,
        pub(crate) reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive values: {}", self.reason);
        }
    }

    /// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64_inclusive() * (hi - lo)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64..self.end as f64).generate(rng) as f32
        }
    }

    macro_rules! tuple_strategies {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning several orders of magnitude.
            rng.next_f64() * 2e9 - 1e9
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: PhantomData }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    use std::hash::{Hash, Hasher};

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 96 }
        }
    }

    /// Deterministic splitmix64 stream seeded from the test identity.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a stable string (module path + test name).
        pub fn from_name(name: &str) -> TestRng {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut h);
            TestRng { state: h.finish() | 1 }
        }

        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed | 1 }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, 1]`.
        #[inline]
        pub fn next_f64_inclusive(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
}

/// Assert within a property (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 1u8..=3, f in 0.5f64..=1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((0.5..=1.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            flag in any::<bool>(),
        ) {
            prop_assert!(pair < 20);
            prop_assert!(u32::from(flag) <= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_limits_cases(x in 0u64..1000) {
            // 5 cases only; just exercise the config path.
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_seed(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[crate::strategy::Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
