//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io, so this shim implements
//! the harness subset capsim's benches use: [`Criterion::benchmark_group`]
//! with `throughput` / `sample_size` / `bench_function` / `finish`,
//! top-level [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: after a short warm-up, the per-iteration cost is
//! estimated and iterations are batched so each sample runs for roughly
//! `TARGET_SAMPLE_NS`; `sample_size` samples are collected and the
//! min / median / max ns-per-iteration are reported, plus elements/sec
//! when a [`Throughput`] is set. No plots, no statistics files — output
//! goes to stdout in a stable greppable format:
//!
//! ```text
//! machine/load_uncapped   time: [412.1 ns 415.9 ns 423.0 ns]  thrpt: 2404232 elem/s
//! ```
//!
//! A positional CLI argument acts as a substring filter on benchmark ids,
//! matching `cargo bench -- <filter>` usage.

use std::time::Instant;

/// Re-export of the standard opaque value barrier.
pub use std::hint::black_box;

/// Rough wall-clock budget per measured sample.
const TARGET_SAMPLE_NS: u64 = 25_000_000;

/// Rough wall-clock budget for warm-up per benchmark.
const WARMUP_NS: u64 = 100_000_000;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Units for reporting derived throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the closure under measurement; handed to `bench_function`.
pub struct Bencher {
    sample_size: usize,
    /// Mean ns per iteration over all samples (filled by `iter`).
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`, batching iterations into timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate per-iteration cost.
        let mut per_iter_ns = {
            let start = Instant::now();
            let mut iters = 0u64;
            loop {
                black_box(routine());
                iters += 1;
                let elapsed = start.elapsed().as_nanos() as u64;
                if elapsed >= WARMUP_NS || iters >= 1_000_000 {
                    break (elapsed as f64 / iters as f64).max(0.1);
                }
            }
        };
        for _ in 0..self.sample_size.max(1) {
            let batch = ((TARGET_SAMPLE_NS as f64 / per_iter_ns) as u64).clamp(1, 10_000_000);
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            per_iter_ns = ns.max(0.1);
            self.samples_ns.push(ns);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{:.1} ns", ns)
    }
}

fn run_benchmark<F>(
    id: &str,
    filter: &Option<String>,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: F,
) where
    F: FnOnce(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    let mut b = Bencher { sample_size, samples_ns: Vec::with_capacity(sample_size) };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mut s = b.samples_ns.clone();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (min, med, max) = (s[0], s[s.len() / 2], s[s.len() - 1]);
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.0} elem/s", n as f64 * 1e9 / med)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.0} B/s", n as f64 * 1e9 / med)
        }
        None => String::new(),
    };
    println!("{id:<40} time: [{} {} {}]{thrpt}", format_ns(min), format_ns(med), format_ns(max));
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        run_benchmark(&id, &self.criterion.filter, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Pick up a positional substring filter from the CLI, skipping the
    /// flags cargo passes to `harness = false` bench binaries.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_benchmark(name, &self.filter, DEFAULT_SAMPLE_SIZE, None, f);
        self
    }
}

/// Bundle bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher { sample_size: 3, samples_ns: Vec::with_capacity(3) };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples_ns.len(), 3);
        assert!(b.samples_ns.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn group_runs_and_respects_filter() {
        let mut c = Criterion { filter: Some("match_me".into()) };
        let mut ran_matching = false;
        let mut ran_other = false;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(1);
            g.throughput(Throughput::Elements(1));
            g.bench_function("match_me", |b| {
                ran_matching = true;
                b.iter(|| 1u64 + 1)
            });
            g.finish();
        }
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(1);
            g.bench_function("other", |b| {
                ran_other = true;
                b.iter(|| 1u64 + 1)
            });
            g.finish();
        }
        assert!(ran_matching);
        assert!(!ran_other);
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("us"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with(" s"));
    }
}
