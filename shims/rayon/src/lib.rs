//! Offline stand-in for `rayon`.
//!
//! The build environment cannot fetch crates.io, so this shim provides
//! the small parallel-iterator surface capsim's sweep runner and fleet
//! engine use: `into_par_iter()` / `par_iter()` followed by
//! `.map(...).collect()`.
//!
//! Work really does run in parallel, scheduled by **chunked work
//! stealing**: the item index space is split into contiguous chunks, one
//! per worker, held in per-worker deques. A worker drains its own deque
//! from the front; when it runs dry it steals the *back half* of a
//! victim's deque (round-robin scan), so one slow item — a node on a deep
//! throttle rung, a chaos-faulted link burning its retry budget — no
//! longer leaves the other workers idle behind a static partition.
//! Results are written into per-index slots and collected in input order,
//! so the schedule never shows: the shim stays a drop-in replacement for
//! deterministic fan-out workloads.
//!
//! The worker count comes from `CAPSIM_THREADS` when set (≥ 1), else
//! `std::thread::available_parallelism()`; either way it is resolved once
//! and cached, not re-queried per call.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Resolve the worker-pool size from an optional `CAPSIM_THREADS` value
/// and the machine's core count. Pure, for testability; the cached entry
/// point is [`current_num_threads`].
fn resolve_workers(env: Option<&str>, cores: usize) -> usize {
    match env.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => cores.max(1),
    }
}

/// The configured worker-pool size: `CAPSIM_THREADS` if set, else the
/// number of available cores. Resolved once per process.
pub fn current_num_threads() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
        resolve_workers(std::env::var("CAPSIM_THREADS").ok().as_deref(), cores)
    })
}

/// Number of worker threads for `n` items.
fn workers_for(n: usize) -> usize {
    current_num_threads().min(n).max(1)
}

/// Steal the back half (⌈len/2⌉ items) of the first non-empty victim
/// deque, scanning round-robin from `thief + 1`.
fn steal_half(queues: &[Mutex<VecDeque<usize>>], thief: usize) -> Option<VecDeque<usize>> {
    let nw = queues.len();
    for off in 1..nw {
        let victim = (thief + off) % nw;
        let mut q = queues[victim].lock().unwrap();
        let len = q.len();
        if len > 0 {
            // Keep the victim's front half; take the back half. Both
            // sides stay contiguous index runs, preserving locality.
            return Some(q.split_off(len - len.div_ceil(2)));
        }
    }
    None
}

/// Order-preserving parallel map: the engine under `collect()`.
fn parallel_map<T, O, F>(items: Vec<T>, f: &F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let nw = workers_for(n);
    if n <= 1 || nw == 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Contiguous initial chunks, one deque per worker (the first `n % nw`
    // chunks are one longer).
    let queues: Vec<Mutex<VecDeque<usize>>> = {
        let base = n / nw;
        let extra = n % nw;
        let mut start = 0;
        (0..nw)
            .map(|w| {
                let len = base + usize::from(w < extra);
                let q = (start..start + len).collect();
                start += len;
                Mutex::new(q)
            })
            .collect()
    };
    std::thread::scope(|scope| {
        for w in 0..nw {
            let queues = &queues;
            let slots = &slots;
            let results = &results;
            scope.spawn(move || loop {
                let idx = queues[w].lock().unwrap().pop_front();
                let idx = match idx {
                    Some(i) => i,
                    None => match steal_half(queues, w) {
                        Some(mut stolen) => {
                            let first = stolen.pop_front().expect("stolen deque is non-empty");
                            if !stolen.is_empty() {
                                queues[w].lock().unwrap().extend(stolen);
                            }
                            first
                        }
                        // Every deque observed empty: all remaining items
                        // are claimed and will be finished by their
                        // claimants. A racing steal can only cost
                        // parallelism, never drop work.
                        None => break,
                    },
                };
                let item = slots[idx].lock().unwrap().take().expect("each slot taken once");
                let out = f(item);
                *results[idx].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// A collected sequence awaiting a parallel stage.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Attach a map stage (lazy; runs at `collect`).
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// The number of items in the stage.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A pending parallel map stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Run the map across worker threads and collect in input order.
    pub fn collect<C, O>(self) -> C
    where
        O: Send,
        F: Fn(T) -> O + Sync,
        C: FromIterator<O>,
    {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// Entry point: `collection.into_par_iter()`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// Entry point: `collection.par_iter()` (yields references).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{resolve_workers, steal_half};
    use std::collections::VecDeque;
    use std::sync::Mutex;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..100u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_yields_references() {
        let data = vec![1u32, 2, 3];
        let v: Vec<u32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        // With >1 worker, at least two distinct thread ids should appear
        // for a slow-enough workload. On a 1-core box this degenerates
        // safely.
        let ids: Vec<std::thread::ThreadId> = (0..16u64)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                std::thread::current().id()
            })
            .collect();
        if super::current_num_threads() > 1 {
            let first = ids[0];
            assert!(ids.iter().any(|&i| i != first), "expected parallel execution");
        }
    }

    #[test]
    fn empty_and_single_item_paths() {
        let v: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let v: Vec<u64> = vec![7u64].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, vec![8]);
    }

    #[test]
    fn skewed_workloads_still_collect_in_order() {
        // One pathologically slow item at the front: with static chunks
        // its whole chunk would stall, with stealing the tail is shared.
        // Either way, the result must be in input order.
        let v: Vec<u64> = (0..64u64)
            .into_par_iter()
            .map(|x| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                x
            })
            .collect();
        assert_eq!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn env_override_resolution() {
        assert_eq!(resolve_workers(None, 8), 8);
        assert_eq!(resolve_workers(Some("3"), 8), 3);
        assert_eq!(resolve_workers(Some(" 12 "), 1), 12);
        assert_eq!(resolve_workers(Some("0"), 8), 8, "zero is ignored");
        assert_eq!(resolve_workers(Some("lots"), 8), 8, "garbage is ignored");
        assert_eq!(resolve_workers(None, 0), 1, "at least one worker");
    }

    #[test]
    fn steal_takes_back_half_and_keeps_victim_front() {
        let queues =
            vec![Mutex::new(VecDeque::new()), Mutex::new((10..15).collect::<VecDeque<usize>>())];
        let stolen = steal_half(&queues, 0).expect("victim has work");
        assert_eq!(stolen, VecDeque::from(vec![12, 13, 14]), "back half (ceil) stolen");
        assert_eq!(*queues[1].lock().unwrap(), VecDeque::from(vec![10, 11]));
        assert!(steal_half(&queues, 0).is_some(), "victim still has its front");
        let mut q1 = queues[1].lock().unwrap();
        q1.clear();
        drop(q1);
        assert!(steal_half(&queues, 0).is_none(), "all empty: nothing to steal");
    }
}
