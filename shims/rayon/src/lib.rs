//! Offline stand-in for `rayon`.
//!
//! The build environment cannot fetch crates.io, so this shim provides
//! the small parallel-iterator surface capsim's sweep runner uses:
//! `into_par_iter()` / `par_iter()` followed by `.map(...).collect()`.
//! Work really does run in parallel — items are distributed over
//! `std::thread::scope` workers (one per available core, capped by the
//! item count) and results are returned in input order, so it is a
//! drop-in replacement for deterministic fan-out workloads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads for `n` items.
fn workers_for(n: usize) -> usize {
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    cores.min(n).max(1)
}

/// Order-preserving parallel map: the engine under `collect()`.
fn parallel_map<T, O, F>(items: Vec<T>, f: &F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers_for(n) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = slots[idx].lock().unwrap().take().expect("each slot taken once");
                let out = f(item);
                *results[idx].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// A collected sequence awaiting a parallel stage.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Attach a map stage (lazy; runs at `collect`).
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// The number of items in the stage.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A pending parallel map stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Run the map across worker threads and collect in input order.
    pub fn collect<C, O>(self) -> C
    where
        O: Send,
        F: Fn(T) -> O + Sync,
        C: FromIterator<O>,
    {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// Entry point: `collection.into_par_iter()`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// Entry point: `collection.par_iter()` (yields references).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..100u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_yields_references() {
        let data = vec![1u32, 2, 3];
        let v: Vec<u32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        // With >1 core, at least two distinct thread ids should appear for
        // a slow-enough workload. On a 1-core box this degenerates safely.
        let ids: Vec<std::thread::ThreadId> = (0..16u64)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                std::thread::current().id()
            })
            .collect();
        if std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1) > 1 {
            let first = ids[0];
            assert!(ids.iter().any(|&i| i != first), "expected parallel execution");
        }
    }

    #[test]
    fn empty_and_single_item_paths() {
        let v: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let v: Vec<u64> = vec![7u64].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, vec![8]);
    }
}
