//! Offline stand-in for the `rand` crate.
//!
//! capsim is fully deterministic and its workloads roll their own seeded
//! generators, so this shim only provides the small seeded-RNG surface a
//! dependency on `rand` implies: [`SeedableRng`], [`rngs::StdRng`] and the
//! [`Rng`] extension trait with uniform range sampling. The generator is
//! splitmix64 — deterministic, portable and more than adequate for
//! simulation workloads (not cryptographic).

/// Core generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range-sampling extension methods.
pub trait Rng: RngCore {
    /// Uniform sample in `[low, high)` for u64 ranges.
    fn random_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }

    /// Uniform f64 in `[0, 1)`.
    fn random(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
