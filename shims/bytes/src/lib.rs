//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, behaviour-compatible subset of the `bytes` API —
//! exactly what capsim's IPMI framing layer uses: cheaply clonable
//! immutable buffers ([`Bytes`]), a growable builder ([`BytesMut`]) and
//! the little-endian `put_*` writers of the [`BufMut`] trait.
//!
//! `Bytes` here is an `Arc<[u8]>`, so clones are O(1) like the real
//! crate; slicing APIs that capsim does not use are omitted.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// A buffer borrowing a `'static` slice (copied here; the distinction
    /// only matters for allocation, not behaviour).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Writer side of the buffer API (little-endian subset).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_equality() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.clone(), b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn bytes_mut_builds_le_frames() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xab);
        m.put_u16_le(0x1234);
        m.put_u32_le(0xdead_beef);
        let b = m.freeze();
        assert_eq!(&b[..], &[0xab, 0x34, 0x12, 0xef, 0xbe, 0xad, 0xde]);
    }

    #[test]
    fn from_vec_is_zero_copy_of_contents() {
        let b: Bytes = vec![9u8, 8, 7].into();
        assert_eq!(&b[..], &[9, 8, 7]);
    }
}
