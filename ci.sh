#!/usr/bin/env bash
# Repository CI gate: format, lint, test, and a scaled-down end-to-end
# smoke of the paper's Table II sweep. Everything runs offline against
# the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, benches, tests; warnings are errors)"
cargo clippy --workspace --benches --tests -q -- -D warnings

echo "== cargo test (workspace)"
cargo test --workspace -q

echo "== table2 smoke (CAPSIM_SCALE=test)"
CAPSIM_SCALE=test cargo run -q --release -p capsim-bench --bin table2 >/dev/null

echo "== fleet scaling smoke (CAPSIM_SCALE=test: lossy busy + datacenter mixes,"
echo "   each serial and parallel with 2 virtual threads x 4 shards, bit-compared)"
CAPSIM_SCALE=test cargo run -q --release -p capsim-bench --bin fleet /tmp/BENCH_fleet_ci.json >/dev/null

echo "== perf smoke (writes BENCH_hotpath.json)"
cargo run -q --release -p capsim-bench --bin perf_smoke >/dev/null

echo "== telemetry smoke (CAPSIM_SCALE=test: obs overhead budget)"
CAPSIM_SCALE=test cargo run -q --release -p capsim-bench --bin telemetry /tmp/BENCH_obs_ci.json >/dev/null

echo "== chaos smoke (CAPSIM_SCALE=test: scripted scenario, soak, guardrail budget)"
CAPSIM_SCALE=test cargo run -q --release -p capsim-bench --bin chaos /tmp/BENCH_chaos_ci.json >/dev/null

echo "== policy smoke (CAPSIM_SCALE=test: RL training replay, frontier, chaos per backend)"
CAPSIM_SCALE=test cargo run -q --release -p capsim-bench --bin policy /tmp/BENCH_policy_ci.json >/dev/null

echo "== traffic smoke (CAPSIM_SCALE=test: emergency replay twins, cap ladder, SLO/J frontier,"
echo "   retry storm with closed-loop clients + failover)"
CAPSIM_SCALE=test cargo run -q --release -p capsim-bench --bin traffic /tmp/BENCH_traffic_ci.json >/dev/null

echo "== closed-loop smoke (retry-storm fleet, serial vs parallel byte-compared inline)"
cargo run -q --release --example closed_loop >/dev/null

echo "== backpressure smoke (retry-only vs AIMD+brownout twins, per-class conservation,"
echo "   CAPSIM_THREADS {1,4} re-exec fingerprints compared)"
cargo run -q --release --example backpressure >/dev/null

echo "== bench trajectory files parse and carry their required keys"
cargo run -q --release -p capsim-bench --bin bench_check -- BENCH_*.json /tmp/BENCH_fleet_ci.json /tmp/BENCH_obs_ci.json /tmp/BENCH_chaos_ci.json /tmp/BENCH_policy_ci.json /tmp/BENCH_traffic_ci.json

echo "== cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "CI OK"
